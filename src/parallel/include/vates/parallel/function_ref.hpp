#pragma once
/// \file function_ref.hpp
/// Non-owning, non-allocating callable reference (a minimal
/// std::function_ref until the standard one lands).  Used on kernel-launch
/// paths where Per.14/Per.15 (no allocation on the critical branch) apply.

#include <type_traits>
#include <utility>

namespace vates {

template <typename Signature>
class FunctionRef;

/// Lightweight view over any callable with the given signature.  The
/// referenced callable must outlive the FunctionRef (it always does on our
/// launch paths: the lambda lives in the caller's frame for the duration
/// of the parallel region).
template <typename Ret, typename... Args>
class FunctionRef<Ret(Args...)> {
public:
  FunctionRef() = delete;

  template <typename Callable,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Callable>, FunctionRef> &&
                std::is_invocable_r_v<Ret, Callable&, Args...>>>
  FunctionRef(Callable&& callable) noexcept // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        invoke_([](void* object, Args... args) -> Ret {
          return (*static_cast<std::remove_reference_t<Callable>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  Ret operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

private:
  void* object_;
  Ret (*invoke_)(void*, Args...);
};

} // namespace vates
