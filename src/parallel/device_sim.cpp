#include "vates/parallel/device_sim.hpp"

#include "vates/support/error.hpp"
#include "vates/support/timer.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>

namespace vates {

namespace {
DeviceOptions optionsFromEnvironment() {
  DeviceOptions options;
  if (const char* env = std::getenv("VATES_DEVICE_JIT_MS"); env != nullptr) {
    options.jitCostMs = std::strtod(env, nullptr);
  }
  if (const char* env = std::getenv("VATES_DEVICE_BLOCK"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      options.blockSize = static_cast<unsigned>(parsed);
    }
  }
  return options;
}

/// Real spin work standing in for kernel compilation: repeatedly hash a
/// buffer until the requested wall time has elapsed.  Using actual work
/// (not sleep) keeps the cost visible to any timing methodology,
/// including CPU-time profilers.
double spinFor(double milliseconds) {
  if (milliseconds <= 0.0) {
    return 0.0;
  }
  WallTimer timer;
  volatile std::uint64_t sink = 0x9e3779b97f4a7c15ULL;
  while (timer.seconds() * 1e3 < milliseconds) {
    std::uint64_t h = sink;
    for (int i = 0; i < 512; ++i) {
      h ^= h << 13;
      h ^= h >> 7;
      h ^= h << 17;
    }
    sink = h;
  }
  return timer.seconds();
}
} // namespace

DeviceSim& DeviceSim::global() {
  static DeviceSim instance(optionsFromEnvironment());
  return instance;
}

DeviceSim::DeviceSim(DeviceOptions options) : options_(options) {
  VATES_REQUIRE(options_.blockSize >= 1, "block size must be >= 1");
  if (options_.workers == 0) {
    externalPool_ = &ThreadPool::global();
  } else {
    ownedPool_ = std::make_unique<ThreadPool>(options_.workers);
  }
}

DeviceSim::~DeviceSim() = default;

ThreadPool& DeviceSim::pool() noexcept {
  return ownedPool_ ? *ownedPool_ : *externalPool_;
}

void* DeviceSim::allocate(std::size_t bytes) {
  void* pointer = ::operator new(bytes, std::align_val_t{64});
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytesAllocated += bytes;
  return pointer;
}

void DeviceSim::deallocate(void* pointer, std::size_t bytes) noexcept {
  if (pointer == nullptr) {
    return;
  }
  ::operator delete(pointer, std::align_val_t{64});
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytesFreed += bytes;
}

void DeviceSim::recordH2D(std::size_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytesH2D += bytes;
}

void DeviceSim::recordD2H(std::size_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytesD2H += bytes;
}

void DeviceSim::setJitCostMs(double milliseconds) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.jitCostMs = milliseconds;
}

double DeviceSim::ensureCompiled(const std::string& kernelName) {
  double jitCostMs = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = compiled_.try_emplace(kernelName, true);
    if (!inserted) {
      return 0.0;
    }
    jitCostMs = options_.jitCostMs;
  }
  const double seconds = spinFor(jitCostMs);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.jitCompilations += 1;
  stats_.jitSeconds += seconds;
  return seconds;
}

void DeviceSim::launch(const std::string& kernelName, std::size_t n,
                       FunctionRef<void(std::size_t)> body) {
  auto dropWorker = [&](std::size_t index, unsigned /*worker*/) { body(index); };
  launchIndexed(kernelName, n, dropWorker);
}

void DeviceSim::launchIndexed(const std::string& kernelName, std::size_t n,
                              FunctionRef<void(std::size_t, unsigned)> body) {
  ensureCompiled(kernelName);
  if (n == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.kernelLaunches += 1;
    return;
  }
  const std::size_t blockSize = options_.blockSize;
  const std::size_t blocks = (n + blockSize - 1) / blockSize;

  pool().forRange(blocks, [&](std::size_t blockBegin, std::size_t blockEnd,
                              unsigned worker) {
    for (std::size_t block = blockBegin; block < blockEnd; ++block) {
      const std::size_t begin = block * blockSize;
      const std::size_t end = std::min(n, begin + blockSize);
      for (std::size_t index = begin; index < end; ++index) {
        body(index, worker);
      }
    }
  });

  std::lock_guard<std::mutex> lock(mutex_);
  stats_.kernelLaunches += 1;
  stats_.blocksExecuted += blocks;
}

void DeviceSim::launch2D(const std::string& kernelName, std::size_t nOuter,
                         std::size_t nInner,
                         FunctionRef<void(std::size_t, std::size_t)> body) {
  const std::size_t total = nOuter * nInner;
  auto flat = [&](std::size_t index) {
    body(index / nInner, index % nInner);
  };
  launch(kernelName, total, flat);
}

void DeviceSim::launch2DIndexed(
    const std::string& kernelName, std::size_t nOuter, std::size_t nInner,
    FunctionRef<void(std::size_t, std::size_t, unsigned)> body) {
  const std::size_t total = nOuter * nInner;
  auto flat = [&](std::size_t index, unsigned worker) {
    body(index / nInner, index % nInner, worker);
  };
  launchIndexed(kernelName, total, flat);
}

DeviceStats DeviceSim::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DeviceSim::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = DeviceStats{};
}

void DeviceSim::resetJitCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  compiled_.clear();
}

} // namespace vates
