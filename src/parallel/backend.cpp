#include "vates/parallel/backend.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <cstdlib>

namespace vates {

const char* backendName(Backend backend) noexcept {
  switch (backend) {
  case Backend::Serial:     return "serial";
  case Backend::OpenMP:     return "openmp";
  case Backend::ThreadPool: return "threads";
  case Backend::DeviceSim:  return "devicesim";
  }
  return "unknown";
}

Backend parseBackend(const std::string& name) {
  const std::string lower = toLower(trim(name));
  Backend backend;
  if (lower == "serial") {
    backend = Backend::Serial;
  } else if (lower == "openmp" || lower == "omp") {
    backend = Backend::OpenMP;
  } else if (lower == "threads" || lower == "pool" || lower == "threadpool") {
    backend = Backend::ThreadPool;
  } else if (lower == "devicesim" || lower == "device" || lower == "gpu-sim" ||
             lower == "gpu") {
    backend = Backend::DeviceSim;
  } else {
    throw InvalidArgument("unknown backend '" + name + "' (available: " +
                          availableBackendList() + ")");
  }
  if (!backendAvailable(backend)) {
    throw Unsupported(std::string("backend '") + backendName(backend) +
                      "' is not available in this build");
  }
  return backend;
}

bool backendAvailable(Backend backend) noexcept {
#ifdef VATES_HAS_OPENMP
  (void)backend;
  return true;
#else
  return backend != Backend::OpenMP;
#endif
}

Backend defaultBackend() {
  if (const char* env = std::getenv("VATES_BACKEND"); env != nullptr) {
    return parseBackend(env);
  }
#ifdef VATES_HAS_OPENMP
  return Backend::OpenMP;
#else
  return Backend::ThreadPool;
#endif
}

std::string availableBackendList() {
  std::string list;
  for (Backend b : {Backend::Serial, Backend::OpenMP, Backend::ThreadPool,
                    Backend::DeviceSim}) {
    if (backendAvailable(b)) {
      if (!list.empty()) {
        list += ", ";
      }
      list += backendName(b);
    }
  }
  return list;
}

} // namespace vates
