#include "vates/parallel/executor.hpp"

namespace vates {

Executor::Executor() : Executor(defaultBackend()) {}

Executor::Executor(Backend backend)
    : Executor(backend, ThreadPool::global(), DeviceSim::global()) {}

Executor::Executor(Backend backend, ThreadPool& pool, DeviceSim& device)
    : backend_(backend), pool_(&pool), device_(&device) {
  VATES_REQUIRE(backendAvailable(backend),
                std::string("backend not available: ") + backendName(backend));
}

unsigned Executor::concurrency() const noexcept {
  switch (backend_) {
  case Backend::Serial:
    return 1;
  case Backend::OpenMP:
#ifdef VATES_HAS_OPENMP
    return static_cast<unsigned>(omp_get_max_threads());
#else
    return 1;
#endif
  case Backend::ThreadPool:
    return pool_->size();
  case Backend::DeviceSim:
    // The device runs blocks on its *own* pool (which may be a private
    // one sized by DeviceOptions::workers), not on the host pool this
    // executor also references; reporting pool_->size() here was wrong
    // and undersized/oversized privatized-replica provisioning.
    return device_->concurrency();
  }
  return 1;
}

} // namespace vates
