#pragma once
/// \file garnet_workflow.hpp
/// The "current production" reference implementation — the counterpart
/// of the Garnet/Mantid workflow whose wall-clock times form the
/// paper's Table II baseline (contribution C1).
///
/// This implementation is *correct* (the integration tests require its
/// histograms to match the optimized pipeline's within floating-point
/// tolerance) but deliberately embodies the practices the paper's
/// proxies improve upon:
///
///   - events loaded into an adaptive MDBox hierarchy (Mantid's
///     MDEventWorkspace; "Mantid's BinMD uses a more adaptive strategy
///     by having a hierarchy of boxes") and BinMD traverses the box
///     tree instead of streaming primitive columns;
///   - per-work-item heap allocation of the intersection list
///     (std::vector per detector — the "dynamic allocation internally
///     for scratch space" the paper calls undesirable);
///   - linear search over *all* bin planes (no region-of-interest);
///   - std::sort of whole Intersection structs;
///   - transform products recomputed inside the detector loop instead
///     of hoisted per operation;
///   - single-threaded, single-rank execution (Mantid's effective
///     behavior for this workflow stage under Garnet's process model).
///
/// Nothing here shares kernel code with src/kernels — it is a separate
/// implementation, which is what makes the baseline-vs-proxy agreement
/// test meaningful.

#include "vates/events/experiment_setup.hpp"
#include "vates/events/md_box_tree.hpp"
#include "vates/support/timer.hpp"

namespace vates::baseline {

struct GarnetResult {
  Histogram3D signal;        ///< BinMD accumulation over all runs
  Histogram3D normalization; ///< MDNorm accumulation over all runs
  Histogram3D crossSection;  ///< signal / normalization
  StageTimes times;          ///< UpdateEvents / MDNorm / BinMD per-stage WCT
};

class GarnetWorkflow {
public:
  /// Borrow the experiment setup (must outlive the workflow).
  explicit GarnetWorkflow(const ExperimentSetup& setup);

  /// Reduce runs [firstRun, lastRun) of the workload, generating each
  /// run's events in memory (the Table II baseline measures compute, so
  /// the generation stands in for LoadEventNexus and is timed as
  /// UpdateEvents).  Defaults to all runs.
  GarnetResult reduce(std::size_t firstRun = 0,
                      std::size_t lastRun = SIZE_MAX) const;

private:
  void mdnormRun(const RunInfo& run, Histogram3D& normalization) const;
  void binmdRun(const MDBoxTree& workspace, Histogram3D& histogram) const;

  const ExperimentSetup* setup_;
};

} // namespace vates::baseline
