#include "vates/baseline/garnet_workflow.hpp"

#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace vates::baseline {

namespace {
/// Local intersection record (position + momentum), Mantid-style.
struct TrajectoryPoint {
  double x, y, z, k;
};
} // namespace

GarnetWorkflow::GarnetWorkflow(const ExperimentSetup& setup) : setup_(&setup) {}

void GarnetWorkflow::mdnormRun(const RunInfo& run,
                               Histogram3D& normalization) const {
  const ExperimentSetup& setup = *setup_;
  const Instrument& instrument = setup.instrument();
  const GridView grid = normalization.gridShape();
  const M33 rInverse = run.goniometerR.transposed();
  const double inv2Pi = 1.0 / units::kTwoPi;

  for (const M33& op : setup.symmetryMatrices()) {
    for (std::size_t d = 0; d < instrument.nDetectors(); ++d) {
      // Transform product recomputed inside the detector loop — the
      // monolithic structure the proxies hoist out.
      const M33 transform =
          (setup.projection().Winv() * op * setup.lattice().UBinv() * rInverse) *
          inv2Pi;
      const V3 t = transform * instrument.qLabDirection(d);

      // Fresh allocation per work item (the practice §III-B flags).
      std::vector<TrajectoryPoint> points;

      for (std::size_t axis = 0; axis < 3; ++axis) {
        const double tAxis = t[axis];
        if (std::fabs(tAxis) < 1e-12) {
          continue;
        }
        // Linear search over every plane of the axis.
        for (std::size_t plane = 0; plane <= grid.n[axis]; ++plane) {
          const double edge = grid.planeEdge(axis, plane);
          const double k = edge / tAxis;
          if (k < run.kMin || k > run.kMax) {
            continue;
          }
          const V3 p = t * k;
          bool inside = true;
          for (std::size_t other = 0; other < 3; ++other) {
            if (other == axis) {
              continue;
            }
            const double slack = 1e-9 / grid.inverseWidth[other];
            if (p[other] < grid.min[other] - slack ||
                p[other] > grid.max[other] + slack) {
              inside = false;
              break;
            }
          }
          if (inside) {
            points.push_back(TrajectoryPoint{p.x, p.y, p.z, k});
          }
        }
      }
      for (const double kEnd : {run.kMin, run.kMax}) {
        const V3 p = t * kEnd;
        bool inside = true;
        for (std::size_t axis = 0; axis < 3; ++axis) {
          const double slack = 1e-9 / grid.inverseWidth[axis];
          if (p[axis] < grid.min[axis] - slack ||
              p[axis] > grid.max[axis] + slack) {
            inside = false;
            break;
          }
        }
        if (inside) {
          points.push_back(TrajectoryPoint{p.x, p.y, p.z, kEnd});
        }
      }

      if (points.size() < 2) {
        continue;
      }
      // Whole-struct sort (allocating std::sort, Mantid-style).
      std::sort(points.begin(), points.end(),
                [](const TrajectoryPoint& a, const TrajectoryPoint& b) {
                  return a.k < b.k;
                });

      const double weightFactor =
          instrument.solidAngle(d) * run.protonCharge;
      for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        const TrajectoryPoint& a = points[i];
        const TrajectoryPoint& b = points[i + 1];
        if (b.k <= a.k) {
          continue;
        }
        const double deposit =
            weightFactor * setup.flux().bandIntegral(a.k, b.k);
        if (deposit <= 0.0) {
          continue;
        }
        const V3 mid{0.5 * (a.x + b.x), 0.5 * (a.y + b.y), 0.5 * (a.z + b.z)};
        normalization.addSerial(mid, deposit);
      }
    }
  }
}

void GarnetWorkflow::binmdRun(const MDBoxTree& workspace,
                              Histogram3D& histogram) const {
  const ExperimentSetup& setup = *setup_;
  const double inv2Pi = 1.0 / units::kTwoPi;
  const EventTable& events = workspace.events();
  for (const M33& op : setup.symmetryMatrices()) {
    const M33 transform =
        (setup.projection().Winv() * op * setup.lattice().UBinv()) * inv2Pi;
    // Mantid-style: walk the MDEventWorkspace box hierarchy rather than
    // streaming a flat primitive column.
    workspace.forEachLeaf([&](const MDBoxTree::BoxInfo&,
                              std::span<const std::uint32_t> indices) {
      for (const std::uint32_t eventIndex : indices) {
        const V3 p = transform * events.qSample(eventIndex);
        histogram.addSerial(p, events.signal(eventIndex));
      }
    });
  }
}

GarnetResult GarnetWorkflow::reduce(std::size_t firstRun,
                                    std::size_t lastRun) const {
  const ExperimentSetup& setup = *setup_;
  lastRun = std::min<std::size_t>(lastRun, setup.spec().nFiles);
  VATES_REQUIRE(firstRun <= lastRun, "invalid run range");

  GarnetResult result{setup.makeHistogram(), setup.makeHistogram(),
                      setup.makeHistogram(), StageTimes{}};
  const EventGenerator generator = setup.makeGenerator();

  for (std::size_t runIndex = firstRun; runIndex < lastRun; ++runIndex) {
    const RunInfo run = generator.runInfo(runIndex);

    // "LoadEventNexus": generate the run's events and build the
    // MDEventWorkspace box hierarchy over them (Mantid pays this cost
    // at load time too).
    WallTimer loadTimer;
    const EventTable table = generator.generate(runIndex);
    const MDBoxTree workspace(table);
    result.times.add("UpdateEvents", loadTimer.seconds());

    WallTimer mdnormTimer;
    mdnormRun(run, result.normalization);
    result.times.add("MDNorm", mdnormTimer.seconds());

    WallTimer binmdTimer;
    binmdRun(workspace, result.signal);
    result.times.add("BinMD", binmdTimer.seconds());
  }

  result.crossSection = Histogram3D::divide(result.signal, result.normalization);
  return result;
}

} // namespace vates::baseline
