#pragma once
/// \file shm_event_source.hpp
/// Adapter from the shm ring to the in-process stream layer: drains
/// frames, decodes pulse packets, and pushes them into an EventChannel
/// so LiveReducer consumes a cross-process stream unchanged.
///
/// The source owns the *drop-oldest-run* semantics of the transport's
/// backpressure story.  Whenever frames are lost — an overrun resync, a
/// CRC-corrupt frame, a producer restart — the run in flight is
/// unsalvageable: the source pushes an abortRun packet (LiveReducer
/// discards its partial buffer) and then skips forward to the next
/// run-start packet, counting every distinct run dropped on the floor.
/// Runs are either reduced complete or not at all; the accumulated
/// histograms never contain a hole-ridden run.

#include "vates/stream/event_channel.hpp"
#include "vates/transport/shm_ring.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vates::transport {

/// Cumulative ingestion counters (a superset of ReaderStats, at pulse
/// granularity).
struct IngestStats {
  std::uint64_t framesIngested = 0;
  std::uint64_t pulsesIngested = 0;
  std::uint64_t eventsIngested = 0;
  std::uint64_t bytesIngested = 0;
  std::uint64_t crcFailures = 0;
  std::uint64_t overruns = 0;
  std::uint64_t framesDropped = 0;
  /// Distinct runs abandoned because the transport lost frames of
  /// theirs (overrun / corruption / restart) — the drop-oldest-run
  /// counter a facility operator watches.
  std::uint64_t runsDropped = 0;
  std::uint64_t producerRestarts = 0;
  std::uint64_t lagFrames = 0; ///< at the last poll
  std::uint64_t maxLagFrames = 0;
  double lastLatencySeconds = 0.0; ///< publish → ingest age of last frame
  bool endOfStream = false;
  bool producerLost = false;
  bool stopped = false; ///< requestStop() ended the drain
};

struct SourceConfig {
  ReaderConfig reader;
  /// Sleep between empty polls (the ring has no doorbell by design —
  /// the producer never blocks on a syscall).
  double idleSleepSeconds = 200e-6;
  /// End the drain when the producer's heartbeat goes stale; with
  /// false the source keeps waiting for a restart (epoch bump).
  bool stopOnProducerLost = true;
  /// Close the channel when the drain ends (EndOfStream, producer
  /// lost, or requestStop) so the consumer unblocks.
  bool closeChannelOnExit = true;
};

/// Drains one shm ring into one EventChannel.  run() blocks (give it a
/// thread); stats() and requestStop() are safe from any thread.
class ShmEventSource {
public:
  explicit ShmEventSource(SourceConfig config);

  /// Attach (honoring reader.attachTimeoutSeconds) and drain until
  /// end-of-stream, producer loss, or requestStop().  Returns the final
  /// counters.
  IngestStats run(stream::EventChannel& channel);

  /// Ask a concurrently running run() to return promptly (bounded by
  /// one idle sleep / one channel-push slice).  Thread-safe; sticky.
  void requestStop() noexcept;

  /// Point-in-time copy of the counters (valid during and after run()).
  IngestStats stats() const;

  /// Recent per-frame ingest latencies, oldest first (bounded buffer;
  /// feed to service::summarizeLatencies for p50/p95).
  std::vector<double> latencySamples() const;

private:
  void mergeReaderStats(const ReaderStats& reader);

  SourceConfig config_;
  std::atomic<bool> stopRequested_{false};
  mutable std::mutex mutex_;
  IngestStats stats_;
  std::vector<double> latencies_;
  std::size_t latencyNext_ = 0; ///< ring index once the buffer is full
};

} // namespace vates::transport
