#pragma once
/// \file packet_codec.hpp
/// Serialization of stream::PulsePacket for the shm ring frames.
///
/// The encoding is exact: TOF and weight doubles travel as their IEEE
/// bit patterns, so a live-ingested run reduces bitwise-identically to
/// the offline reduction of the same generated events — the payoff
/// claim of the whole transport layer.
///
/// Layout (little-endian, as the host writes it — the ring never
/// crosses a machine boundary):
///
///   u32 kind        (1 = pulse)
///   u32 runIndex
///   u32 pulseIndex
///   u32 flags       (bit 0: endOfRun, bit 1: runStart)
///   u32 nEvents
///   u32 reserved
///   u32 detectorIds[nEvents]
///   u32 pulseIndices[nEvents]
///   u64 tofBits[nEvents]
///   u64 weightBits[nEvents]
///
/// Frame-level integrity (CRC-32, seqlock) lives in shm_ring.hpp; the
/// decoder here only validates structure, so a CRC-clean frame that
/// still fails to decode indicates a version/logic bug, not bit rot.

#include "vates/stream/event_channel.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vates::transport {

/// Codec header flags.
inline constexpr std::uint32_t kPacketEndOfRun = 1u << 0;
/// First packet of its run — the resync anchor a reader skips to after
/// an overrun (DESIGN.md §11 resync rules).
inline constexpr std::uint32_t kPacketRunStart = 1u << 1;

inline constexpr std::size_t kPacketHeaderBytes = 24;
/// Serialized bytes per event (u32 id + u32 pulse + f64 tof + f64 w).
inline constexpr std::size_t kPacketBytesPerEvent = 24;

/// Serialized size of a packet with \p nEvents events.
std::size_t packetFrameBytes(std::size_t nEvents) noexcept;

/// Largest event count whose packet fits a frame payload of
/// \p payloadCapacity bytes (0 if even an empty packet does not fit).
std::size_t maxEventsPerFrame(std::size_t payloadCapacity) noexcept;

/// Encode \p packet into \p out (resized to the exact frame size).
/// \p runStart marks the first packet of a run.
void encodePacket(const stream::PulsePacket& packet, bool runStart,
                  std::vector<std::uint8_t>& out);

/// A decoded frame: the packet plus its codec flags.
struct DecodedPacket {
  stream::PulsePacket packet;
  bool runStart = false;
};

/// Decode one frame; throws IOError on any structural mismatch
/// (unknown kind, size inconsistent with the event count).
DecodedPacket decodePacket(const std::uint8_t* data, std::size_t bytes);

} // namespace vates::transport
