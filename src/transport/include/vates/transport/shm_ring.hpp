#pragma once
/// \file shm_ring.hpp
/// Cross-process event transport: a fixed-capacity POSIX shared-memory
/// ring of seqlock'd, CRC-32-stamped frames — the ADARA-style link that
/// moves beamline pulse packets from a DAQ producer process into live
/// reduction consumers before any file exists.
///
/// Topology is single producer, multiple concurrent readers.  Frames
/// are *broadcast*: every reader sees every frame (readers never
/// consume), and each frame slot is guarded by a per-slot sequence
/// word.  The writer publishes frame number f into slot f % frameCount
/// by storing seq = 2f+1 (write in progress), copying the payload, then
/// storing seq = 2f+2 (stable).  A reader wanting frame f loads seq,
/// copies the payload, and re-checks seq: any concurrent overwrite is
/// detected and surfaces as an overrun, never as torn data.  Payload
/// words are copied through relaxed std::atomic_ref so the protocol is
/// exactly representable to ThreadSanitizer — no "benign race" carve-out.
///
/// A versioned superblock (magic, layout version, geometry, producer
/// heartbeat/epoch, reader registry) lets a reader attach cold, detect
/// producer restarts (epoch bump) and producer death (stale heartbeat),
/// and lets a Block-policy writer wait on the slowest live reader
/// instead of overwriting it.  Every payload carries a CRC-32
/// (io/crc32.hpp) verified after the seqlock copy, so real memory
/// corruption — as opposed to a detected overwrite — is caught too.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vates::transport {

// ---------------------------------------------------------------------------
// On-segment layout (layout version 1)

/// "VATESHM1" little-endian.
inline constexpr std::uint64_t kShmMagic = 0x314D485345544156ull;
inline constexpr std::uint32_t kShmLayoutVersion = 1;
/// Reader-registry capacity (slots in the superblock).
inline constexpr std::size_t kMaxReaders = 16;
/// Superblock size; frame 0 starts at this offset.
inline constexpr std::size_t kSuperblockBytes = 4096;
/// Frame header size; the payload of a frame starts at this offset
/// within its slot.
inline constexpr std::size_t kFrameHeaderBytes = 64;

/// Producer lifecycle, stored in the superblock.
enum class ProducerState : std::uint32_t {
  Absent = 0,   ///< no producer has attached since creation
  Active = 1,   ///< producer attached and (supposedly) alive
  Finished = 2, ///< producer published everything and detached cleanly
};

/// One registered reader (64 bytes in the superblock).  All fields are
/// accessed through std::atomic_ref.
struct ReaderSlot {
  std::uint32_t state = 0; ///< 0 free, 1 claimed
  std::uint32_t pid = 0;   ///< claimant's pid (diagnostics only)
  std::uint64_t cursor = 0;
  std::uint64_t heartbeatNs = 0;
  std::uint8_t pad[40] = {};
};
static_assert(sizeof(ReaderSlot) == 64);

/// Page 0 of the segment.  Plain fields; cross-process synchronization
/// goes through std::atomic_ref (address-free on this platform, as
/// static_asserted in the implementation).
struct Superblock {
  std::uint64_t magic = 0;
  std::uint32_t layoutVersion = 0;
  std::uint32_t reserved0 = 0;
  std::uint64_t frameCount = 0;
  std::uint64_t framePayloadBytes = 0; ///< payload capacity per frame
  std::uint64_t head = 0;              ///< frames published so far
  std::uint64_t epoch = 0;             ///< bumped on every producer attach
  std::uint64_t heartbeatNs = 0;       ///< producer steady-clock liveness
  std::uint32_t producerState = 0;     ///< ProducerState
  std::uint32_t reserved1 = 0;
  std::uint8_t pad[192] = {};
  ReaderSlot readers[kMaxReaders];
};
static_assert(sizeof(Superblock) == 256 + 64 * kMaxReaders);
static_assert(sizeof(Superblock) <= kSuperblockBytes);

/// Per-frame seqlock header (64 bytes, at the start of each slot).
struct FrameHeader {
  std::uint64_t seq = 0; ///< 2f+1 while writing frame f, 2f+2 stable
  std::uint32_t payloadBytes = 0;
  std::uint32_t crc = 0;         ///< CRC-32 of the payload bytes
  std::uint64_t timestampNs = 0; ///< producer steady clock at publish
  std::uint8_t pad[40] = {};
};
static_assert(sizeof(FrameHeader) == kFrameHeaderBytes);

/// Stride of one frame slot (header + payload, 64-byte aligned).
std::size_t frameStride(std::size_t framePayloadBytes) noexcept;
/// Total segment size for a geometry.
std::size_t segmentBytes(std::size_t frameCount,
                         std::size_t framePayloadBytes) noexcept;
/// Byte offset of frame number \p frame's slot within the segment.
std::size_t frameOffset(std::uint64_t frame, std::size_t frameCount,
                        std::size_t framePayloadBytes) noexcept;

// ---------------------------------------------------------------------------
// Configuration

/// What the writer does when the slowest *live* registered reader is a
/// full ring behind.
enum class BackpressurePolicy {
  /// Never overwrite an unread frame of a live reader: wait (bounded
  /// spin + sleep) until it advances or its heartbeat goes stale.
  Block,
  /// Overwrite; the lapped reader detects the overrun via the seqlock
  /// sequence and resyncs, dropping the overwritten frames (and the
  /// runs they carried).
  DropOldest,
};

/// "block" / "drop-oldest" (InvalidArgument otherwise).
BackpressurePolicy parseBackpressurePolicy(const std::string& text);
const char* backpressurePolicyName(BackpressurePolicy policy) noexcept;

/// Ring geometry + producer policy.
struct RingConfig {
  std::string name = "/vates-daq"; ///< shm name (leading '/')
  std::size_t frameCount = 1024;
  std::size_t framePayloadBytes = std::size_t{256} * 1024;
  BackpressurePolicy policy = BackpressurePolicy::Block;
  /// A registered reader whose heartbeat is older than this no longer
  /// blocks the writer (it is presumed dead or stuck).
  double readerTimeoutSeconds = 2.0;
  /// Unlink the segment when the writer is destroyed cleanly.
  bool unlinkOnDestroy = true;

  /// Apply VATES_SHM_NAME / VATES_SHM_FRAMES / VATES_SHM_FRAME_BYTES /
  /// VATES_SHM_POLICY on top of \p base; malformed values are ignored.
  static RingConfig withEnvOverrides(RingConfig base);
};

// ---------------------------------------------------------------------------
// Writer

struct WriterStats {
  std::uint64_t framesPublished = 0;
  std::uint64_t bytesPublished = 0;
  /// Block-policy waits (each one a bounded sleep, not a spin).
  std::uint64_t backpressureWaits = 0;
};

/// Single producer end.  Creates the segment (or adopts a compatible
/// existing one, bumping the epoch so attached readers notice the
/// restart).  Not thread-safe: one publishing thread.
class ShmRingWriter {
public:
  explicit ShmRingWriter(RingConfig config);
  ~ShmRingWriter();

  ShmRingWriter(const ShmRingWriter&) = delete;
  ShmRingWriter& operator=(const ShmRingWriter&) = delete;

  const RingConfig& config() const noexcept { return config_; }
  std::size_t framePayloadCapacity() const noexcept {
    return config_.framePayloadBytes;
  }
  /// True when this writer adopted an existing segment (producer
  /// restart) instead of creating a fresh one.
  bool adoptedExistingSegment() const noexcept { return adopted_; }

  /// Publish one frame.  Blocks per the backpressure policy; a \p stop
  /// token (checked while blocked) aborts the wait and returns false
  /// without publishing.  Throws InvalidArgument when \p bytes exceeds
  /// the frame payload capacity.
  bool publish(const void* payload, std::size_t bytes,
               const std::atomic<bool>* stop = nullptr);

  /// Refresh the producer heartbeat without publishing (call from an
  /// idle pacing loop so readers don't declare the producer lost).
  void heartbeat() noexcept;

  /// Mark the stream complete (ProducerState::Finished).  Readers that
  /// drain past head then see EndOfStream.  Idempotent; also invoked by
  /// the destructor.
  void finish() noexcept;

  /// Number of registered live readers (fresh heartbeat) right now.
  std::size_t liveReaders() const noexcept;

  WriterStats stats() const noexcept { return stats_; }

private:
  std::uint64_t minLiveReaderCursor(std::uint64_t fallback) const noexcept;

  RingConfig config_;
  Superblock* super_ = nullptr;
  std::uint8_t* base_ = nullptr;
  std::size_t mappedBytes_ = 0;
  std::uint64_t head_ = 0;
  bool adopted_ = false;
  bool finished_ = false;
  WriterStats stats_;
};

// ---------------------------------------------------------------------------
// Reader

/// Where a cold-attaching reader starts.
enum class StartFrom {
  Oldest, ///< earliest frame still (probably) resident in the ring
  Head,   ///< only frames published after the attach
};

struct ReaderConfig {
  std::string name = "/vates-daq";
  /// Keep retrying the attach for this long when the segment does not
  /// exist yet (0: fail immediately) — lets a consumer start before
  /// the producer.
  double attachTimeoutSeconds = 0.0;
  StartFrom startFrom = StartFrom::Oldest;
  /// An Active producer whose heartbeat is older than this is reported
  /// as lost (0: never).
  double producerTimeoutSeconds = 5.0;

  /// Apply VATES_SHM_NAME on top of \p base.
  static ReaderConfig withEnvOverrides(ReaderConfig base);
};

enum class PollStatus {
  Frame,        ///< a stable, CRC-verified frame was copied out
  Waiting,      ///< no new frame yet; producer looks alive
  EndOfStream,  ///< producer finished and everything is drained
  Overrun,      ///< writer lapped this reader; cursor was resynced
  Corrupt,      ///< stable frame failed its CRC; frame skipped
  ProducerLost, ///< producer Active but heartbeat stale
  Restarted,    ///< producer epoch changed under us
};

const char* pollStatusName(PollStatus status) noexcept;

struct PollResult {
  PollStatus status = PollStatus::Waiting;
  std::uint64_t frameNumber = 0;  ///< valid for Frame/Corrupt
  std::uint64_t framesSkipped = 0;///< dropped by an Overrun resync
  double latencySeconds = 0.0;    ///< publish → poll age (Frame only)
};

struct ReaderStats {
  std::uint64_t framesRead = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t crcFailures = 0;
  std::uint64_t overruns = 0;      ///< resync events
  std::uint64_t framesDropped = 0; ///< frames skipped by resyncs
  std::uint64_t producerRestarts = 0;
  std::uint64_t lagFrames = 0;    ///< head - cursor at the last poll
  std::uint64_t maxLagFrames = 0;
};

/// One reader end.  Registers in the superblock's reader table (so a
/// Block-policy writer can wait on it) and releases its slot on
/// destruction.  Not thread-safe: one polling thread per reader; open
/// several ShmRingReaders for concurrent consumers.
class ShmRingReader {
public:
  explicit ShmRingReader(ReaderConfig config);
  ~ShmRingReader();

  ShmRingReader(const ShmRingReader&) = delete;
  ShmRingReader& operator=(const ShmRingReader&) = delete;

  const ReaderConfig& config() const noexcept { return config_; }
  std::size_t framePayloadCapacity() const noexcept { return payloadBytes_; }
  std::uint64_t cursor() const noexcept { return cursor_; }

  /// Non-blocking poll.  On Frame, \p payload holds the frame bytes.
  PollResult poll(std::vector<std::uint8_t>& payload);

  ReaderStats stats() const noexcept { return stats_; }

private:
  void attach();
  void resync(std::uint64_t head, PollResult& result);
  void publishCursor() noexcept;

  ReaderConfig config_;
  Superblock* super_ = nullptr;
  std::uint8_t* base_ = nullptr;
  std::size_t mappedBytes_ = 0;
  std::size_t frameCount_ = 0;
  std::size_t payloadBytes_ = 0;
  std::size_t slotIndex_ = kMaxReaders; ///< registry slot, if claimed
  std::uint64_t cursor_ = 0;
  std::uint64_t epoch_ = 0;
  ReaderStats stats_;
};

/// Remove a named segment (ignores "does not exist").  Tools call this
/// to clean up after a crashed producer.
void unlinkRing(const std::string& name);

} // namespace vates::transport
