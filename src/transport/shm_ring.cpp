#include "vates/transport/shm_ring.hpp"

#include "vates/io/crc32.hpp"
#include "vates/support/error.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace vates::transport {

namespace {

// The whole protocol rests on atomic_ref being address-free (the same
// word is mapped at different addresses in different processes).
static_assert(std::atomic_ref<std::uint64_t>::is_always_lock_free);
static_assert(std::atomic_ref<std::uint32_t>::is_always_lock_free);

std::atomic_ref<std::uint64_t> ref64(std::uint64_t& word) noexcept {
  return std::atomic_ref<std::uint64_t>(word);
}

std::atomic_ref<std::uint32_t> ref32(std::uint32_t& word) noexcept {
  return std::atomic_ref<std::uint32_t>(word);
}

std::uint64_t steadyNowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Copy \p bytes (rounded up to whole 8-byte words; the slot always has
/// word slack) through relaxed atomics — the TSan-visible spelling of
/// the seqlock payload copy.  Alignment of both sides is guaranteed by
/// the 64-byte slot layout.
void copyWordsOut(const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t bytes) noexcept {
  const std::size_t words = (bytes + 7) / 8;
  // atomic_ref<const T> only lands in C++26; the loads are const in
  // spirit.
  auto* from = reinterpret_cast<std::uint64_t*>(const_cast<std::uint8_t*>(src));
  auto* to = reinterpret_cast<std::uint64_t*>(dst);
  for (std::size_t i = 0; i < words; ++i) {
    to[i] = ref64(from[i]).load(std::memory_order_relaxed);
  }
}

void copyWordsIn(const std::uint8_t* src, std::size_t bytes,
                 std::uint8_t* dst) noexcept {
  const std::size_t whole = bytes / 8;
  auto* to = reinterpret_cast<std::uint64_t*>(dst);
  for (std::size_t i = 0; i < whole; ++i) {
    std::uint64_t word;
    std::memcpy(&word, src + i * 8, 8);
    ref64(to[i]).store(word, std::memory_order_relaxed);
  }
  const std::size_t tail = bytes % 8;
  if (tail != 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, src + whole * 8, tail);
    ref64(to[whole]).store(word, std::memory_order_relaxed);
  }
}

std::string normalizeName(std::string name) {
  VATES_REQUIRE(!name.empty(), "shm ring name must not be empty");
  if (name.front() != '/') {
    name.insert(name.begin(), '/');
  }
  VATES_REQUIRE(name.find('/', 1) == std::string::npos,
                "shm ring name must not contain '/' past the first");
  return name;
}

std::size_t roundUp64(std::size_t bytes) noexcept {
  return (bytes + 63) & ~std::size_t{63};
}

struct Mapping {
  int fd = -1;
  void* base = MAP_FAILED;
  std::size_t bytes = 0;
};

void closeMapping(Mapping& mapping) noexcept {
  if (mapping.base != MAP_FAILED) {
    ::munmap(mapping.base, mapping.bytes);
    mapping.base = MAP_FAILED;
  }
  if (mapping.fd >= 0) {
    ::close(mapping.fd);
    mapping.fd = -1;
  }
}

} // namespace

std::size_t frameStride(std::size_t framePayloadBytes) noexcept {
  return kFrameHeaderBytes + roundUp64(framePayloadBytes);
}

std::size_t segmentBytes(std::size_t frameCount,
                         std::size_t framePayloadBytes) noexcept {
  return kSuperblockBytes + frameCount * frameStride(framePayloadBytes);
}

std::size_t frameOffset(std::uint64_t frame, std::size_t frameCount,
                        std::size_t framePayloadBytes) noexcept {
  return kSuperblockBytes +
         static_cast<std::size_t>(frame % frameCount) *
             frameStride(framePayloadBytes);
}

BackpressurePolicy parseBackpressurePolicy(const std::string& text) {
  if (text == "block") {
    return BackpressurePolicy::Block;
  }
  if (text == "drop-oldest") {
    return BackpressurePolicy::DropOldest;
  }
  throw InvalidArgument("unknown backpressure policy: \"" + text +
                        "\" (want block or drop-oldest)");
}

const char* backpressurePolicyName(BackpressurePolicy policy) noexcept {
  return policy == BackpressurePolicy::Block ? "block" : "drop-oldest";
}

RingConfig RingConfig::withEnvOverrides(RingConfig base) {
  if (const char* name = std::getenv("VATES_SHM_NAME");
      name != nullptr && *name != '\0') {
    base.name = name;
  }
  const auto positive = [](const char* env) -> std::size_t {
    const char* raw = std::getenv(env);
    if (raw == nullptr || *raw == '\0') {
      return 0;
    }
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    return (end == raw || *end != '\0') ? 0 : static_cast<std::size_t>(value);
  };
  if (const std::size_t frames = positive("VATES_SHM_FRAMES"); frames >= 2) {
    base.frameCount = frames;
  }
  if (const std::size_t bytes = positive("VATES_SHM_FRAME_BYTES");
      bytes >= 64) {
    base.framePayloadBytes = bytes;
  }
  if (const char* policy = std::getenv("VATES_SHM_POLICY");
      policy != nullptr && *policy != '\0') {
    try {
      base.policy = parseBackpressurePolicy(policy);
    } catch (const InvalidArgument&) {
      // Malformed env values are ignored, matching the service knobs.
    }
  }
  return base;
}

ReaderConfig ReaderConfig::withEnvOverrides(ReaderConfig base) {
  if (const char* name = std::getenv("VATES_SHM_NAME");
      name != nullptr && *name != '\0') {
    base.name = name;
  }
  return base;
}

const char* pollStatusName(PollStatus status) noexcept {
  switch (status) {
  case PollStatus::Frame:
    return "frame";
  case PollStatus::Waiting:
    return "waiting";
  case PollStatus::EndOfStream:
    return "end-of-stream";
  case PollStatus::Overrun:
    return "overrun";
  case PollStatus::Corrupt:
    return "corrupt";
  case PollStatus::ProducerLost:
    return "producer-lost";
  case PollStatus::Restarted:
    return "restarted";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Writer

ShmRingWriter::ShmRingWriter(RingConfig config) : config_(std::move(config)) {
  config_.name = normalizeName(config_.name);
  VATES_REQUIRE(config_.frameCount >= 2, "ring needs at least 2 frames");
  VATES_REQUIRE(config_.framePayloadBytes >= 64,
                "frame payload capacity must be >= 64 bytes");
  config_.framePayloadBytes = roundUp64(config_.framePayloadBytes);
  const std::size_t wantBytes =
      segmentBytes(config_.frameCount, config_.framePayloadBytes);

  Mapping mapping;
  mapping.fd = ::shm_open(config_.name.c_str(), O_RDWR | O_CREAT, 0600);
  if (mapping.fd < 0) {
    throw IOError("shm_open failed for " + config_.name + ": " +
                  std::strerror(errno));
  }
  struct stat info {};
  if (::fstat(mapping.fd, &info) != 0) {
    closeMapping(mapping);
    throw IOError("fstat failed for " + config_.name);
  }
  const bool fresh = info.st_size == 0;
  if (fresh && ::ftruncate(mapping.fd, static_cast<off_t>(wantBytes)) != 0) {
    closeMapping(mapping);
    throw IOError("ftruncate failed for " + config_.name + ": " +
                  std::strerror(errno));
  }
  mapping.bytes = fresh ? wantBytes : static_cast<std::size_t>(info.st_size);
  mapping.base = ::mmap(nullptr, mapping.bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, mapping.fd, 0);
  if (mapping.base == MAP_FAILED) {
    closeMapping(mapping);
    throw IOError("mmap failed for " + config_.name);
  }
  ::close(mapping.fd);
  mapping.fd = -1;

  base_ = static_cast<std::uint8_t*>(mapping.base);
  mappedBytes_ = mapping.bytes;
  super_ = reinterpret_cast<Superblock*>(base_);

  if (fresh) {
    // Geometry first, magic last (release): a cold reader that sees the
    // magic is guaranteed to see a fully initialized superblock.
    super_->layoutVersion = kShmLayoutVersion;
    super_->frameCount = config_.frameCount;
    super_->framePayloadBytes = config_.framePayloadBytes;
    ref64(super_->head).store(0, std::memory_order_relaxed);
    ref64(super_->epoch).store(1, std::memory_order_relaxed);
    ref64(super_->heartbeatNs).store(steadyNowNs(), std::memory_order_relaxed);
    ref32(super_->producerState)
        .store(static_cast<std::uint32_t>(ProducerState::Active),
               std::memory_order_relaxed);
    ref64(super_->magic).store(kShmMagic, std::memory_order_release);
    head_ = 0;
  } else {
    // Producer restart: adopt the segment if (and only if) it is
    // exactly the layout and geometry we were asked for; bump the
    // epoch so attached readers observe the restart.
    if (ref64(super_->magic).load(std::memory_order_acquire) != kShmMagic ||
        super_->layoutVersion != kShmLayoutVersion) {
      const std::string name = config_.name;
      ::munmap(base_, mappedBytes_);
      throw IOError("existing shm segment " + name +
                    " has a foreign or half-initialized layout "
                    "(unlink it or pick another name)");
    }
    if (super_->frameCount != config_.frameCount ||
        super_->framePayloadBytes != config_.framePayloadBytes ||
        mappedBytes_ < wantBytes) {
      const std::string name = config_.name;
      ::munmap(base_, mappedBytes_);
      throw InvalidArgument(
          "existing shm segment " + name +
          " has a different geometry; unlink it or match its config");
    }
    adopted_ = true;
    head_ = ref64(super_->head).load(std::memory_order_acquire);
    ref64(super_->heartbeatNs).store(steadyNowNs(), std::memory_order_relaxed);
    ref32(super_->producerState)
        .store(static_cast<std::uint32_t>(ProducerState::Active),
               std::memory_order_relaxed);
    ref64(super_->epoch).fetch_add(1, std::memory_order_release);
  }
}

ShmRingWriter::~ShmRingWriter() {
  if (super_ != nullptr) {
    finish();
    ::munmap(base_, mappedBytes_);
    super_ = nullptr;
    if (config_.unlinkOnDestroy) {
      ::shm_unlink(config_.name.c_str());
    }
  }
}

void ShmRingWriter::heartbeat() noexcept {
  ref64(super_->heartbeatNs).store(steadyNowNs(), std::memory_order_relaxed);
}

void ShmRingWriter::finish() noexcept {
  if (!finished_) {
    finished_ = true;
    heartbeat();
    ref32(super_->producerState)
        .store(static_cast<std::uint32_t>(ProducerState::Finished),
               std::memory_order_release);
  }
}

std::uint64_t
ShmRingWriter::minLiveReaderCursor(std::uint64_t fallback) const noexcept {
  const std::uint64_t now = steadyNowNs();
  const std::uint64_t timeoutNs = static_cast<std::uint64_t>(
      config_.readerTimeoutSeconds * 1e9);
  std::uint64_t floor = fallback;
  bool any = false;
  for (std::size_t i = 0; i < kMaxReaders; ++i) {
    ReaderSlot& slot = super_->readers[i];
    if (ref32(slot.state).load(std::memory_order_acquire) != 1) {
      continue;
    }
    if (timeoutNs > 0) {
      const std::uint64_t beat =
          ref64(slot.heartbeatNs).load(std::memory_order_relaxed);
      if (now > beat && now - beat > timeoutNs) {
        continue; // presumed dead; never let it block the beamline
      }
    }
    const std::uint64_t cursor =
        ref64(slot.cursor).load(std::memory_order_relaxed);
    floor = any ? std::min(floor, cursor) : cursor;
    any = true;
  }
  return floor;
}

std::size_t ShmRingWriter::liveReaders() const noexcept {
  const std::uint64_t now = steadyNowNs();
  const std::uint64_t timeoutNs = static_cast<std::uint64_t>(
      config_.readerTimeoutSeconds * 1e9);
  std::size_t live = 0;
  for (std::size_t i = 0; i < kMaxReaders; ++i) {
    ReaderSlot& slot = super_->readers[i];
    if (ref32(slot.state).load(std::memory_order_acquire) != 1) {
      continue;
    }
    const std::uint64_t beat =
        ref64(slot.heartbeatNs).load(std::memory_order_relaxed);
    if (timeoutNs == 0 || now <= beat || now - beat <= timeoutNs) {
      ++live;
    }
  }
  return live;
}

bool ShmRingWriter::publish(const void* payload, std::size_t bytes,
                            const std::atomic<bool>* stop) {
  VATES_REQUIRE(bytes <= config_.framePayloadBytes,
                "frame payload exceeds the ring's frame capacity");
  VATES_REQUIRE(!finished_, "publish after finish()");
  if (config_.policy == BackpressurePolicy::Block) {
    while (head_ - minLiveReaderCursor(head_) >= config_.frameCount) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        return false;
      }
      ++stats_.backpressureWaits;
      heartbeat();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  std::uint8_t* slot =
      base_ + frameOffset(head_, config_.frameCount, config_.framePayloadBytes);
  auto* header = reinterpret_cast<FrameHeader*>(slot);
  ref64(header->seq).store(head_ * 2 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  ref32(header->payloadBytes)
      .store(static_cast<std::uint32_t>(bytes), std::memory_order_relaxed);
  ref32(header->crc).store(crc32(payload, bytes), std::memory_order_relaxed);
  ref64(header->timestampNs).store(steadyNowNs(), std::memory_order_relaxed);
  copyWordsIn(static_cast<const std::uint8_t*>(payload), bytes,
              slot + kFrameHeaderBytes);
  ref64(header->seq).store(head_ * 2 + 2, std::memory_order_release);
  ++head_;
  ref64(super_->head).store(head_, std::memory_order_release);
  heartbeat();
  ++stats_.framesPublished;
  stats_.bytesPublished += bytes;
  return true;
}

// ---------------------------------------------------------------------------
// Reader

ShmRingReader::ShmRingReader(ReaderConfig config) : config_(std::move(config)) {
  config_.name = normalizeName(config_.name);
  attach();
}

void ShmRingReader::attach() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.attachTimeoutSeconds));
  Mapping mapping;
  for (;;) {
    mapping.fd = ::shm_open(config_.name.c_str(), O_RDWR, 0);
    if (mapping.fd >= 0) {
      struct stat info {};
      if (::fstat(mapping.fd, &info) != 0) {
        closeMapping(mapping);
        throw IOError("fstat failed for " + config_.name);
      }
      if (static_cast<std::size_t>(info.st_size) >= kSuperblockBytes) {
        mapping.bytes = static_cast<std::size_t>(info.st_size);
        mapping.base = ::mmap(nullptr, mapping.bytes, PROT_READ | PROT_WRITE,
                              MAP_SHARED, mapping.fd, 0);
        if (mapping.base == MAP_FAILED) {
          closeMapping(mapping);
          throw IOError("mmap failed for " + config_.name);
        }
        ::close(mapping.fd);
        mapping.fd = -1;
        auto* super = static_cast<Superblock*>(mapping.base);
        if (ref64(super->magic).load(std::memory_order_acquire) == kShmMagic) {
          // Fully initialized; validate before touching any frame.
          if (super->layoutVersion != kShmLayoutVersion) {
            const std::uint32_t version = super->layoutVersion;
            closeMapping(mapping);
            throw IOError("shm segment " + config_.name +
                          " has layout version " + std::to_string(version) +
                          " (this build speaks " +
                          std::to_string(kShmLayoutVersion) + ")");
          }
          const std::size_t frameCount =
              static_cast<std::size_t>(super->frameCount);
          const std::size_t payloadBytes =
              static_cast<std::size_t>(super->framePayloadBytes);
          if (frameCount < 2 || payloadBytes < 64 || payloadBytes % 64 != 0 ||
              segmentBytes(frameCount, payloadBytes) > mapping.bytes) {
            closeMapping(mapping);
            throw IOError("shm segment " + config_.name +
                          " is truncated or its geometry is corrupt");
          }
          base_ = static_cast<std::uint8_t*>(mapping.base);
          mappedBytes_ = mapping.bytes;
          super_ = super;
          frameCount_ = frameCount;
          payloadBytes_ = payloadBytes;
          break;
        }
        // Magic not published yet: producer is mid-initialization.
        ::munmap(mapping.base, mapping.bytes);
        mapping.base = MAP_FAILED;
      } else {
        closeMapping(mapping);
      }
    }
    closeMapping(mapping);
    if (std::chrono::steady_clock::now() >= deadline) {
      throw IOError("cannot attach to shm ring " + config_.name +
                    (config_.attachTimeoutSeconds <= 0.0
                         ? ": no such segment or not yet initialized"
                         : ": timed out waiting for the producer"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Claim a registry slot so a Block-policy producer can wait on us.
  for (std::size_t i = 0; i < kMaxReaders; ++i) {
    std::uint32_t expected = 0;
    if (ref32(super_->readers[i].state)
            .compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) {
      slotIndex_ = i;
      break;
    }
  }
  if (slotIndex_ == kMaxReaders) {
    ::munmap(base_, mappedBytes_);
    super_ = nullptr;
    throw Unsupported("shm ring " + config_.name + " already has " +
                      std::to_string(kMaxReaders) + " readers");
  }

  epoch_ = ref64(super_->epoch).load(std::memory_order_acquire);
  const std::uint64_t head = ref64(super_->head).load(std::memory_order_acquire);
  cursor_ = config_.startFrom == StartFrom::Head
                ? head
                : (head > frameCount_ ? head - frameCount_ : 0);
  ref32(super_->readers[slotIndex_].pid)
      .store(static_cast<std::uint32_t>(::getpid()), std::memory_order_relaxed);
  publishCursor();
}

ShmRingReader::~ShmRingReader() {
  if (super_ != nullptr) {
    if (slotIndex_ < kMaxReaders) {
      ref32(super_->readers[slotIndex_].state)
          .store(0, std::memory_order_release);
    }
    ::munmap(base_, mappedBytes_);
    super_ = nullptr;
  }
}

void ShmRingReader::publishCursor() noexcept {
  ReaderSlot& slot = super_->readers[slotIndex_];
  ref64(slot.cursor).store(cursor_, std::memory_order_relaxed);
  ref64(slot.heartbeatNs).store(steadyNowNs(), std::memory_order_relaxed);
}

void ShmRingReader::resync(std::uint64_t head, PollResult& result) {
  // Skip to a little past the oldest slot so the producer doesn't lap
  // us again before the first copy completes.
  const std::uint64_t margin = frameCount_ / 8 + 1;
  const std::uint64_t oldest =
      head > frameCount_ ? head - frameCount_ + margin : 0;
  // Always make progress, even if head lagged behind the slot we just
  // saw overwritten.
  const std::uint64_t target = std::max(oldest, cursor_ + 1);
  result.status = PollStatus::Overrun;
  result.framesSkipped = target - cursor_;
  stats_.framesDropped += result.framesSkipped;
  ++stats_.overruns;
  cursor_ = target;
  publishCursor();
}

PollResult ShmRingReader::poll(std::vector<std::uint8_t>& payload) {
  PollResult result;
  const std::uint64_t epochNow =
      ref64(super_->epoch).load(std::memory_order_acquire);
  if (epochNow != epoch_) {
    epoch_ = epochNow;
    ++stats_.producerRestarts;
    result.status = PollStatus::Restarted;
    return result;
  }
  const std::uint64_t head = ref64(super_->head).load(std::memory_order_acquire);
  stats_.lagFrames = head > cursor_ ? head - cursor_ : 0;
  stats_.maxLagFrames = std::max(stats_.maxLagFrames, stats_.lagFrames);

  if (cursor_ >= head) {
    publishCursor();
    const auto state = static_cast<ProducerState>(
        ref32(super_->producerState).load(std::memory_order_acquire));
    if (state == ProducerState::Finished &&
        cursor_ >= ref64(super_->head).load(std::memory_order_acquire)) {
      result.status = PollStatus::EndOfStream;
    } else if (state == ProducerState::Active &&
               config_.producerTimeoutSeconds > 0.0) {
      const std::uint64_t beat =
          ref64(super_->heartbeatNs).load(std::memory_order_relaxed);
      const std::uint64_t now = steadyNowNs();
      const auto timeoutNs = static_cast<std::uint64_t>(
          config_.producerTimeoutSeconds * 1e9);
      result.status = (now > beat && now - beat > timeoutNs)
                          ? PollStatus::ProducerLost
                          : PollStatus::Waiting;
    } else {
      result.status = PollStatus::Waiting;
    }
    return result;
  }

  std::uint8_t* slot =
      base_ + frameOffset(cursor_, frameCount_, payloadBytes_);
  auto* header = reinterpret_cast<FrameHeader*>(slot);
  const std::uint64_t want = cursor_ * 2 + 2;
  const std::uint64_t s1 = ref64(header->seq).load(std::memory_order_acquire);
  if (s1 < want) {
    // head said the frame exists but its slot is behind — the writer is
    // mid-commit.  Usually that resolves in nanoseconds; if the
    // heartbeat is stale the producer died mid-frame, and waiting
    // forever would hang the consumer.
    const auto state = static_cast<ProducerState>(
        ref32(super_->producerState).load(std::memory_order_acquire));
    if (state == ProducerState::Active && config_.producerTimeoutSeconds > 0.0) {
      const std::uint64_t beat =
          ref64(super_->heartbeatNs).load(std::memory_order_relaxed);
      const std::uint64_t now = steadyNowNs();
      const auto timeoutNs =
          static_cast<std::uint64_t>(config_.producerTimeoutSeconds * 1e9);
      if (now > beat && now - beat > timeoutNs) {
        result.status = PollStatus::ProducerLost;
        return result;
      }
    }
    result.status = PollStatus::Waiting;
    return result;
  }
  if (s1 > want) {
    resync(head, result);
    return result;
  }
  const std::uint32_t storedBytes =
      ref32(header->payloadBytes).load(std::memory_order_relaxed);
  const std::uint32_t storedCrc =
      ref32(header->crc).load(std::memory_order_relaxed);
  const std::uint64_t stampNs =
      ref64(header->timestampNs).load(std::memory_order_relaxed);
  const std::size_t bytes =
      std::min<std::size_t>(storedBytes, payloadBytes_); // clamp torn sizes
  payload.resize((bytes + 7) / 8 * 8);
  copyWordsOut(slot + kFrameHeaderBytes, payload.data(), bytes);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t s2 = ref64(header->seq).load(std::memory_order_relaxed);
  if (s2 != s1) {
    resync(ref64(super_->head).load(std::memory_order_acquire), result);
    return result;
  }
  payload.resize(bytes);
  result.frameNumber = cursor_;
  if (storedBytes > payloadBytes_ || crc32(payload.data(), bytes) != storedCrc) {
    // A *stable* frame whose checksum disagrees: genuine corruption
    // (or an injected fault in the failure tests), not a race.
    ++stats_.crcFailures;
    ++cursor_;
    publishCursor();
    result.status = PollStatus::Corrupt;
    return result;
  }
  const std::uint64_t now = steadyNowNs();
  result.latencySeconds =
      now > stampNs ? static_cast<double>(now - stampNs) * 1e-9 : 0.0;
  result.status = PollStatus::Frame;
  ++cursor_;
  publishCursor();
  ++stats_.framesRead;
  stats_.bytesRead += bytes;
  return result;
}

void unlinkRing(const std::string& name) {
  ::shm_unlink(normalizeName(name).c_str());
}

} // namespace vates::transport
