#include "vates/transport/shm_event_source.hpp"

#include "vates/support/error.hpp"
#include "vates/transport/packet_codec.hpp"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

namespace vates::transport {
namespace {

constexpr std::size_t kLatencyBufferCap = 8192;

} // namespace

ShmEventSource::ShmEventSource(SourceConfig config)
    : config_(std::move(config)) {}

void ShmEventSource::requestStop() noexcept {
  stopRequested_.store(true, std::memory_order_relaxed);
}

IngestStats ShmEventSource::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<double> ShmEventSource::latencySamples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latencies_.size() < kLatencyBufferCap) {
    return latencies_;
  }
  // Unroll the ring so callers see samples oldest-first.
  std::vector<double> ordered;
  ordered.reserve(latencies_.size());
  ordered.insert(ordered.end(), latencies_.begin() + latencyNext_,
                 latencies_.end());
  ordered.insert(ordered.end(), latencies_.begin(),
                 latencies_.begin() + latencyNext_);
  return ordered;
}

void ShmEventSource::mergeReaderStats(const ReaderStats& reader) {
  stats_.crcFailures = reader.crcFailures;
  stats_.overruns = reader.overruns;
  stats_.framesDropped = reader.framesDropped;
  stats_.producerRestarts = reader.producerRestarts;
  stats_.lagFrames = reader.lagFrames;
  stats_.maxLagFrames = reader.maxLagFrames;
}

IngestStats ShmEventSource::run(stream::EventChannel& channel) {
  stopRequested_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = IngestStats{};
    latencies_.clear();
    latencyNext_ = 0;
  }

  // Attach with our own retry pacing (single-shot attempts) so a
  // requestStop() is honored even while waiting for the producer to
  // create the segment.
  std::optional<ShmRingReader> reader;
  {
    ReaderConfig attempt = config_.reader;
    const double budget = attempt.attachTimeoutSeconds;
    attempt.attachTimeoutSeconds = 0.0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(budget));
    for (;;) {
      if (stopRequested_.load(std::memory_order_relaxed)) {
        if (config_.closeChannelOnExit) {
          channel.close();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.stopped = true;
        return stats_;
      }
      try {
        reader.emplace(attempt);
        break;
      } catch (const IOError&) {
        if (budget <= 0.0 || std::chrono::steady_clock::now() >= deadline) {
          if (config_.closeChannelOnExit) {
            channel.close();
          }
          throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
  const auto idleSleep = std::chrono::duration<double>(
      config_.idleSleepSeconds > 0 ? config_.idleSleepSeconds : 200e-6);

  // Run-boundary state machine.  We start in the skipping state: when
  // attaching mid-stream (StartFrom::Head, or Oldest after frames were
  // already recycled) the first frame is usually mid-run, and a partial
  // run must never reach the reducer.  A run-start frame flips us to
  // forwarding; any frame loss flips us back.
  bool forwarding = false;
  bool midRun = false;          // forwarded packets of an unfinished run
  std::uint32_t currentRun = 0; // run of the last forwarded packet
  bool skipRunValid = false;
  std::uint32_t skipRun = 0; // last run counted dropped while skipping

  const auto pushCooperatively = [&](stream::PulsePacket&& packet) {
    while (!channel.tryPushFor(packet, std::chrono::milliseconds(10))) {
      if (stopRequested_.load(std::memory_order_relaxed)) {
        return false;
      }
    }
    return true;
  };

  // Frame loss (overrun resync, corrupt frame, producer restart): the
  // in-flight run cannot be completed, so tell the reducer to discard
  // its partial buffer and hunt for the next run boundary.
  const auto abortInFlightRun = [&]() -> bool {
    if (forwarding && midRun) {
      stream::PulsePacket abort;
      abort.abortRun = true;
      if (!pushCooperatively(std::move(abort))) {
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.runsDropped;
      }
      // Remember which run we just counted so the skip phase doesn't
      // count its remaining frames a second time.
      skipRunValid = true;
      skipRun = currentRun;
    } else {
      skipRunValid = false;
    }
    forwarding = false;
    midRun = false;
    return true;
  };

  std::vector<std::uint8_t> payload;
  bool done = false;
  while (!done) {
    if (stopRequested_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.stopped = true;
      break;
    }
    const PollResult poll = reader->poll(payload);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      mergeReaderStats(reader->stats());
    }
    switch (poll.status) {
    case PollStatus::Waiting:
      std::this_thread::sleep_for(idleSleep);
      continue;
    case PollStatus::EndOfStream: {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.endOfStream = true;
      done = true;
      continue;
    }
    case PollStatus::ProducerLost: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.producerLost = true;
      }
      if (config_.stopOnProducerLost) {
        done = true;
        continue;
      }
      if (!abortInFlightRun()) {
        done = true;
        continue;
      }
      // Wait for the producer to come back (epoch bump → Restarted).
      std::this_thread::sleep_for(idleSleep);
      continue;
    }
    case PollStatus::Overrun:
    case PollStatus::Corrupt:
    case PollStatus::Restarted:
      if (!abortInFlightRun()) {
        done = true;
      }
      continue;
    case PollStatus::Frame:
      break;
    }

    DecodedPacket decoded;
    try {
      decoded = decodePacket(payload.data(), payload.size());
    } catch (const Error&) {
      // Structurally invalid despite a clean CRC (e.g. a producer with
      // a newer codec): treat like a corrupt frame.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.crcFailures;
      }
      if (!abortInFlightRun()) {
        done = true;
      }
      continue;
    }

    if (!forwarding) {
      if (!decoded.runStart) {
        // Mid-run frame while hunting for a boundary: count each
        // distinct abandoned run once.
        std::lock_guard<std::mutex> lock(mutex_);
        if (!skipRunValid || skipRun != decoded.packet.runIndex) {
          skipRunValid = true;
          skipRun = decoded.packet.runIndex;
          ++stats_.runsDropped;
        }
        continue;
      }
      forwarding = true;
      skipRunValid = false;
    }

    const bool endOfRun = decoded.packet.endOfRun;
    currentRun = decoded.packet.runIndex;
    const std::uint64_t packetEvents = decoded.packet.events.size();
    if (!pushCooperatively(std::move(decoded.packet))) {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.stopped = true;
      break;
    }
    midRun = !endOfRun;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.framesIngested;
    ++stats_.pulsesIngested;
    stats_.eventsIngested += packetEvents;
    stats_.bytesIngested += payload.size();
    stats_.lastLatencySeconds = poll.latencySeconds;
    if (latencies_.size() < kLatencyBufferCap) {
      latencies_.push_back(poll.latencySeconds);
    } else {
      latencies_[latencyNext_] = poll.latencySeconds;
      latencyNext_ = (latencyNext_ + 1) % kLatencyBufferCap;
    }
  }

  if (config_.closeChannelOnExit) {
    channel.close();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

} // namespace vates::transport
