#include "vates/transport/packet_codec.hpp"

#include "vates/support/error.hpp"

#include <bit>
#include <cstring>

namespace vates::transport {

namespace {

constexpr std::uint32_t kKindPulse = 1;

void putU32(std::uint8_t* dst, std::uint32_t value) noexcept {
  std::memcpy(dst, &value, sizeof(value));
}

std::uint32_t getU32(const std::uint8_t* src) noexcept {
  std::uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

} // namespace

std::size_t packetFrameBytes(std::size_t nEvents) noexcept {
  return kPacketHeaderBytes + nEvents * kPacketBytesPerEvent;
}

std::size_t maxEventsPerFrame(std::size_t payloadCapacity) noexcept {
  if (payloadCapacity < kPacketHeaderBytes) {
    return 0;
  }
  return (payloadCapacity - kPacketHeaderBytes) / kPacketBytesPerEvent;
}

void encodePacket(const stream::PulsePacket& packet, bool runStart,
                  std::vector<std::uint8_t>& out) {
  const std::size_t n = packet.events.size();
  out.resize(packetFrameBytes(n));
  std::uint8_t* p = out.data();
  putU32(p + 0, kKindPulse);
  putU32(p + 4, packet.runIndex);
  putU32(p + 8, packet.pulseIndex);
  putU32(p + 12, (packet.endOfRun ? kPacketEndOfRun : 0u) |
                     (runStart ? kPacketRunStart : 0u));
  putU32(p + 16, static_cast<std::uint32_t>(n));
  putU32(p + 20, 0);
  p += kPacketHeaderBytes;
  std::memcpy(p, packet.events.detectorIds().data(), n * sizeof(std::uint32_t));
  p += n * sizeof(std::uint32_t);
  std::memcpy(p, packet.events.pulseIndices().data(),
              n * sizeof(std::uint32_t));
  p += n * sizeof(std::uint32_t);
  std::memcpy(p, packet.events.tofs().data(), n * sizeof(double));
  p += n * sizeof(double);
  std::memcpy(p, packet.events.weights().data(), n * sizeof(double));
}

DecodedPacket decodePacket(const std::uint8_t* data, std::size_t bytes) {
  if (bytes < kPacketHeaderBytes) {
    throw IOError("pulse frame shorter than its header (" +
                  std::to_string(bytes) + " bytes)");
  }
  const std::uint32_t kind = getU32(data + 0);
  if (kind != kKindPulse) {
    throw IOError("unknown pulse-frame kind " + std::to_string(kind));
  }
  const std::uint32_t n = getU32(data + 16);
  if (bytes != packetFrameBytes(n)) {
    throw IOError("pulse frame size mismatch: " + std::to_string(bytes) +
                  " bytes for " + std::to_string(n) + " events");
  }
  const std::uint32_t flags = getU32(data + 12);
  DecodedPacket decoded;
  decoded.packet.runIndex = getU32(data + 4);
  decoded.packet.pulseIndex = getU32(data + 8);
  decoded.packet.endOfRun = (flags & kPacketEndOfRun) != 0;
  decoded.runStart = (flags & kPacketRunStart) != 0;
  decoded.packet.events.reserve(n);
  const std::uint8_t* ids = data + kPacketHeaderBytes;
  const std::uint8_t* pulses = ids + std::size_t{n} * sizeof(std::uint32_t);
  const std::uint8_t* tofs = pulses + std::size_t{n} * sizeof(std::uint32_t);
  const std::uint8_t* weights = tofs + std::size_t{n} * sizeof(double);
  for (std::uint32_t i = 0; i < n; ++i) {
    double tof;
    double weight;
    std::memcpy(&tof, tofs + std::size_t{i} * sizeof(double), sizeof(double));
    std::memcpy(&weight, weights + std::size_t{i} * sizeof(double),
                sizeof(double));
    decoded.packet.events.append(
        getU32(ids + std::size_t{i} * sizeof(std::uint32_t)), tof,
        getU32(pulses + std::size_t{i} * sizeof(std::uint32_t)), weight);
  }
  return decoded;
}

} // namespace vates::transport
