#include "vates/flux/flux_spectrum.hpp"

#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <cmath>

namespace vates {

FluxSpectrum::FluxSpectrum(double kMin, double kMax,
                           std::vector<double> cumulative)
    : kMin_(kMin), kMax_(kMax), cumulative_(std::move(cumulative)) {
  VATES_REQUIRE(kMax > kMin && kMin > 0.0, "need 0 < kMin < kMax");
  VATES_REQUIRE(cumulative_.size() >= 2, "flux table needs >= 2 points");
  VATES_REQUIRE(cumulative_.front() == 0.0, "cumulative flux must start at 0");
  for (std::size_t i = 1; i < cumulative_.size(); ++i) {
    VATES_REQUIRE(cumulative_[i] >= cumulative_[i - 1],
                  "cumulative flux must be non-decreasing");
  }
  inverseStep_ = static_cast<double>(cumulative_.size() - 1) / (kMax_ - kMin_);
}

FluxSpectrum FluxSpectrum::moderatorMaxwellian(double kMin, double kMax,
                                               std::size_t nPoints,
                                               double lambdaPeak,
                                               double totalWeight) {
  VATES_REQUIRE(nPoints >= 2, "flux table needs >= 2 points");
  VATES_REQUIRE(lambdaPeak > 0.0, "peak wavelength must be positive");
  VATES_REQUIRE(totalWeight > 0.0, "total weight must be positive");
  VATES_REQUIRE(kMax > kMin && kMin > 0.0, "need 0 < kMin < kMax");

  // Density in momentum: φ(k) dk with λ = 2π/k.  The Maxwellian in
  // wavelength is φ_M(λ) ∝ λ⁻⁵ exp(−(λT/λ)²) with λT chosen so the peak
  // sits at lambdaPeak (peak of λ⁻⁵ exp(−(λT/λ)²) is at λ = λT·sqrt(2/5)
  // ... we simply set λT = lambdaPeak·sqrt(5/2)).  A small epithermal
  // 1/λ term keeps the short-wavelength tail alive, as real moderators
  // do.  Only the *shape* matters: the table is renormalized to
  // totalWeight.
  const double lambdaT = lambdaPeak * std::sqrt(5.0 / 2.0);
  const double maxwellScale = std::pow(lambdaT, 4.0); // dimensional scale
  auto density = [&](double k) {
    const double lambda = units::kTwoPi / k;
    const double maxwell =
        maxwellScale * std::pow(lambda, -5.0) *
        std::exp(-(lambdaT / lambda) * (lambdaT / lambda));
    const double epithermal = 0.02 / lambda;
    // Change of variables dλ = (2π/k²) dk.
    const double jacobian = units::kTwoPi / (k * k);
    return (maxwell + epithermal) * jacobian;
  };

  const double step = (kMax - kMin) / static_cast<double>(nPoints - 1);
  std::vector<double> cumulative(nPoints, 0.0);
  for (std::size_t i = 1; i < nPoints; ++i) {
    const double k0 = kMin + step * static_cast<double>(i - 1);
    const double k1 = kMin + step * static_cast<double>(i);
    // Trapezoid rule per cell.
    cumulative[i] = cumulative[i - 1] +
                    0.5 * (density(k0) + density(k1)) * (k1 - k0);
  }
  const double total = cumulative.back();
  VATES_REQUIRE(total > 0.0, "degenerate flux spectrum");
  for (double& value : cumulative) {
    value *= totalWeight / total;
  }
  return FluxSpectrum(kMin, kMax, std::move(cumulative));
}

double FluxSpectrum::momentumAtQuantile(double quantile) const noexcept {
  const double target =
      std::min(1.0, std::max(0.0, quantile)) * cumulative_.back();
  // Binary search for the cell containing the target, then linear
  // interpolation inside it (the table is non-decreasing).
  std::size_t lo = 0;
  std::size_t hi = cumulative_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (cumulative_[mid] < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double step = (kMax_ - kMin_) / static_cast<double>(cumulative_.size() - 1);
  const double cellStart = cumulative_[lo];
  const double cellEnd = cumulative_[hi];
  const double fraction =
      cellEnd > cellStart ? (target - cellStart) / (cellEnd - cellStart) : 0.0;
  return kMin_ + step * (static_cast<double>(lo) + fraction);
}

FluxSpectrum FluxSpectrum::flat(double kMin, double kMax, std::size_t nPoints,
                                double totalWeight) {
  VATES_REQUIRE(nPoints >= 2, "flux table needs >= 2 points");
  std::vector<double> cumulative(nPoints);
  for (std::size_t i = 0; i < nPoints; ++i) {
    cumulative[i] = totalWeight * static_cast<double>(i) /
                    static_cast<double>(nPoints - 1);
  }
  return FluxSpectrum(kMin, kMax, std::move(cumulative));
}

} // namespace vates
