#pragma once
/// \file flux_spectrum.hpp
/// Incident-flux data for normalization — the "FluxFile"/"VanadiumFile"
/// inputs of the paper's artifact description.
///
/// MDNorm needs the *integrated* incident flux Φ(k) = ∫ φ(k′) dk′ from
/// the bottom of the measured momentum band up to k: the normalization
/// deposited between two trajectory intersections at momenta k₁ < k₂ is
/// solidAngle · protonCharge · (Φ(k₂) − Φ(k₁)).  Φ is monotone
/// non-decreasing and stored as a piecewise-linear table on a uniform
/// momentum grid, exactly how the production workflow's flux workspace
/// behaves.
///
/// Because the table is consumed inside kernels on every backend, a
/// trivially-copyable FluxTableView exposes (kMin, 1/Δk, n, data*) with
/// an inline interpolator — no virtual calls, no allocation (Per.14).

#include <cstddef>
#include <span>
#include <vector>

namespace vates {

/// Non-owning, trivially copyable view used inside kernels.
struct FluxTableView {
  double kMin = 0.0;
  double kMax = 0.0;
  double inverseStep = 0.0;
  std::size_t n = 0;
  const double* cumulative = nullptr;

  /// Integrated flux at momentum \p k (clamped to the table's band).
  double integrated(double k) const noexcept {
    if (n == 0) {
      return 0.0;
    }
    if (k <= kMin) {
      return cumulative[0];
    }
    if (k >= kMax) {
      return cumulative[n - 1];
    }
    const double position = (k - kMin) * inverseStep;
    auto index = static_cast<std::size_t>(position);
    if (index >= n - 1) {
      index = n - 2;
    }
    const double fraction = position - static_cast<double>(index);
    return cumulative[index] +
           fraction * (cumulative[index + 1] - cumulative[index]);
  }

  /// Φ(k₂) − Φ(k₁); callers guarantee k₁ ≤ k₂.
  double bandIntegral(double k1, double k2) const noexcept {
    return integrated(k2) - integrated(k1);
  }
};

/// Owning integrated-flux table.
class FluxSpectrum {
public:
  /// From an explicit cumulative table on the uniform grid
  /// [kMin, kMax].  The table must have >= 2 points, start at 0, and be
  /// non-decreasing; violations throw InvalidArgument.
  FluxSpectrum(double kMin, double kMax, std::vector<double> cumulative);

  /// Synthetic SNS-style moderator spectrum: a Maxwellian peak (in
  /// wavelength) with an epithermal 1/λ tail, integrated numerically to
  /// the cumulative table.  \p lambdaPeak is the Maxwellian's peak
  /// wavelength in Å and \p totalWeight the value of Φ(kMax).
  static FluxSpectrum moderatorMaxwellian(double kMin, double kMax,
                                          std::size_t nPoints,
                                          double lambdaPeak,
                                          double totalWeight);

  /// Flat spectrum: Φ grows linearly across the band (useful for tests —
  /// normalization then reduces to solidAngle · charge · Δk).
  static FluxSpectrum flat(double kMin, double kMax, std::size_t nPoints,
                           double totalWeight);

  double kMin() const noexcept { return kMin_; }
  double kMax() const noexcept { return kMax_; }
  std::size_t nPoints() const noexcept { return cumulative_.size(); }
  std::span<const double> table() const noexcept { return cumulative_; }

  /// Total integrated flux across the band.
  double totalWeight() const noexcept { return cumulative_.back(); }

  double integrated(double k) const noexcept { return view().integrated(k); }
  double bandIntegral(double k1, double k2) const noexcept {
    return view().bandIntegral(k1, k2);
  }

  /// Inverse CDF: the momentum k at which Φ(k)/Φ(kMax) = \p quantile
  /// (quantile in [0, 1], clamped).  Used to sample event momenta with
  /// the same spectral shape the normalization assumes.
  double momentumAtQuantile(double quantile) const noexcept;

  /// Kernel view (valid while this object is alive).
  FluxTableView view() const noexcept {
    return FluxTableView{kMin_, kMax_, inverseStep_, cumulative_.size(),
                         cumulative_.data()};
  }

private:
  double kMin_;
  double kMax_;
  double inverseStep_;
  std::vector<double> cumulative_;
};

} // namespace vates
