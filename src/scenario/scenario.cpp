#include "vates/scenario/scenario.hpp"

#include "vates/events/experiment_setup.hpp"
#include "vates/events/generator.hpp"
#include "vates/io/crc32.hpp"
#include "vates/io/event_file.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"
#include "vates/support/strings.hpp"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace vates::scenario {

namespace {

/// The canonical 21 point groups the matrix cycles through, in
/// crystal-family order (triclinic → cubic).  PointGroup supports a few
/// more symbols (-4, 4mm, 622, ...); this fixed list is what guarantees
/// any 21 consecutive scenario indices span all 21 groups — an index
/// into supportedSymbols() would tie scenario identity to a map's
/// iteration order and silently reshuffle if a symbol were added.
const char* const kPointGroups[21] = {
    "1",   "-1",  "2",     "m",  "2/m", "222", "mmm",
    "4",   "4/m", "422",   "4/mmm",
    "3",   "-3",  "32",    "-3m",
    "6",   "6/m",
    "23",  "m-3", "432",   "m-3m",
};

/// Crystal families of the 21 matrix point groups — the lattice the
/// scenario draws must be *compatible* with the symmetry it symmetrizes
/// by, or the "virtual experiment" would be physically impossible.
enum class Family { Triclinic, Monoclinic, Orthorhombic, Tetragonal,
                    Hexagonal, Cubic };

Family familyOf(const std::string& pointGroup) {
  if (pointGroup == "1" || pointGroup == "-1") {
    return Family::Triclinic;
  }
  if (pointGroup == "2" || pointGroup == "m" || pointGroup == "2/m") {
    return Family::Monoclinic;
  }
  if (pointGroup == "222" || pointGroup == "mmm") {
    return Family::Orthorhombic;
  }
  if (pointGroup == "4" || pointGroup == "4/m" || pointGroup == "422" ||
      pointGroup == "4/mmm") {
    return Family::Tetragonal;
  }
  if (pointGroup == "3" || pointGroup == "-3" || pointGroup == "32" ||
      pointGroup == "-3m" || pointGroup == "6" || pointGroup == "6/m") {
    return Family::Hexagonal; // trigonal on hexagonal axes
  }
  return Family::Cubic; // 23, m-3, 432, m-3m
}

/// File names are derived from the workload name, so the point-group
/// symbol must not smuggle path separators ("2/m" → "2_m").
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == '/' || c == '\\' || c == ' ') {
      c = '_';
    }
  }
  return text;
}

std::string planFileName(const Scenario& scenario) {
  return scenario.workload.name + "_plan.ini";
}

std::string manifestFileName(const Scenario& scenario) {
  return scenario.workload.name + "_manifest.ini";
}

/// Canonical little-endian event serialization the events CRC chains
/// over.  Doubles are IEEE-754 bit patterns; on the (little-endian)
/// platforms this project targets a memcpy is the LE encoding.
void appendEventBytes(std::vector<unsigned char>& buffer,
                      std::uint32_t detectorId, double tof,
                      std::uint32_t pulseIndex, double weight) {
  const auto put32 = [&buffer](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer.push_back(static_cast<unsigned char>((value >> shift) & 0xffu));
    }
  };
  const auto put64 = [&buffer](double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    for (int shift = 0; shift < 64; shift += 8) {
      buffer.push_back(static_cast<unsigned char>((bits >> shift) & 0xffu));
    }
  };
  put32(detectorId);
  put64(tof);
  put32(pulseIndex);
  put64(weight);
}

/// Accumulate one run's events into a ground truth in progress:
/// Neumaier-compensated weight sum plus the chained CRC.
void accumulateRun(const RawEventList& events, ScenarioGroundTruth& truth,
                   double& weightSum, double& weightCompensation,
                   std::vector<unsigned char>& scratch) {
  scratch.clear();
  for (std::size_t i = 0; i < events.size(); ++i) {
    appendEventBytes(scratch, events.detectorId(i), events.tof(i),
                     events.pulseIndex(i), events.weight(i));
    const double w = events.weight(i);
    const double sum = weightSum + w;
    if (std::abs(weightSum) >= std::abs(w)) {
      weightCompensation += (weightSum - sum) + w;
    } else {
      weightCompensation += (w - sum) + weightSum;
    }
    weightSum = sum;
  }
  truth.eventCount += events.size();
  truth.eventsCrc = crc32(scratch.data(), scratch.size(), truth.eventsCrc);
}

std::string readFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IOError("cannot read: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

} // namespace

const char* instrumentShapeName(InstrumentShape shape) noexcept {
  return shape == InstrumentShape::Cylinder ? "cylinder" : "banks";
}

Scenario makeScenario(std::size_t index, std::uint64_t matrixSeed) {
  Scenario scenario;
  scenario.index = index;
  scenario.shape =
      index % 2 == 0 ? InstrumentShape::Cylinder : InstrumentShape::Banks;
  const double maskFractions[3] = {0.0, 0.3, 0.9};
  scenario.maskFraction = maskFractions[index % 3];

  WorkloadSpec& w = scenario.workload;
  w.pointGroup = kPointGroups[index % 21];
  w.instrument =
      scenario.shape == InstrumentShape::Cylinder ? "corelli" : "topaz";

  // Draw order is part of the scenario contract — inserting a draw
  // shifts every later parameter of every scenario, which the golden
  // scenarios in tests/golden/ would catch.
  Xoshiro256 rng(matrixSeed, index);

  // Lattice constants, constrained to the point group's crystal family.
  const double a = rng.uniform(3.0, 12.0);
  const double b = rng.uniform(3.0, 12.0);
  const double c = rng.uniform(3.0, 12.0);
  const double beta = rng.uniform(95.0, 120.0);
  const double alpha = rng.uniform(70.0, 110.0);
  const double gamma = rng.uniform(70.0, 110.0);
  switch (familyOf(w.pointGroup)) {
  case Family::Triclinic:
    w.latticeA = a; w.latticeB = b; w.latticeC = c;
    w.latticeAlpha = alpha; w.latticeBeta = beta; w.latticeGamma = gamma;
    break;
  case Family::Monoclinic:
    w.latticeA = a; w.latticeB = b; w.latticeC = c;
    w.latticeBeta = beta;
    break;
  case Family::Orthorhombic:
    w.latticeA = a; w.latticeB = b; w.latticeC = c;
    break;
  case Family::Tetragonal:
    w.latticeA = a; w.latticeB = a; w.latticeC = c;
    break;
  case Family::Hexagonal:
    w.latticeA = a; w.latticeB = a; w.latticeC = c;
    w.latticeGamma = 120.0;
    break;
  case Family::Cubic:
    w.latticeA = a; w.latticeB = a; w.latticeC = a;
    break;
  }

  // Centering: keep P for the cubic F/I-incompatible families simple —
  // P/I/C for non-cubic, P/I/F for cubic (all extinction rules are
  // exercised across the matrix either way).
  const std::uint64_t centeringDraw = rng.uniformInt(3);
  if (familyOf(w.pointGroup) == Family::Cubic) {
    const Centering table[3] = {Centering::P, Centering::I, Centering::F};
    w.centering = table[centeringDraw];
  } else {
    const Centering table[3] = {Centering::P, Centering::I, Centering::C};
    w.centering = table[centeringDraw];
  }

  // Instrument and ensemble scale — deliberately small: a scenario is a
  // correctness specimen, not a benchmark workload.
  w.nDetectors = 40 + rng.uniformInt(41);       // 40..80
  w.nFiles = 1 + rng.uniformInt(2);             // 1..2
  w.eventsPerFile = 300 + rng.uniformInt(1201); // 300..1500
  w.omegaStartDeg = rng.uniform(0.0, 360.0);
  w.omegaStepDeg = rng.uniform(2.0, 15.0);
  w.protonCharge = rng.uniform(0.5, 2.0);

  // Wavelength band.
  w.lambdaMin = rng.uniform(0.6, 1.2);
  w.lambdaMax = w.lambdaMin + rng.uniform(1.0, 2.5);

  // Output grid.
  w.bins[0] = 6 + rng.uniformInt(7); // 6..12
  w.bins[1] = 6 + rng.uniformInt(7);
  w.bins[2] = 1 + rng.uniformInt(3); // 1..3
  for (int axis = 0; axis < 3; ++axis) {
    const double extent = rng.uniform(3.0, 6.0);
    w.extentMin[axis] = -extent;
    w.extentMax[axis] = extent;
  }

  // Synthetic-signal shape.
  w.braggAmplitude = rng.uniform(50.0, 200.0);
  w.braggSigma = rng.uniform(0.04, 0.12);
  w.diffuseBackground = rng.uniform(0.1, 0.8);

  w.seed = rng.next();
  w.maskFraction = scenario.maskFraction;
  w.maskSeed = 0; // derive from the event seed — one knob

  w.name = strfmt("scn%02zu-%s-m%02d-%s", index,
                  scenario.shape == InstrumentShape::Cylinder ? "cyl"
                                                              : "banks",
                  static_cast<int>(std::lround(scenario.maskFraction * 100)),
                  sanitize(w.pointGroup).c_str());
  scenario.name = w.name;
  return scenario;
}

std::vector<Scenario> scenarioMatrix(std::size_t count,
                                     std::uint64_t matrixSeed) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(count);
  for (std::size_t index = 0; index < count; ++index) {
    scenarios.push_back(makeScenario(index, matrixSeed));
  }
  return scenarios;
}

core::ReductionPlan scenarioPlan(const Scenario& scenario) {
  core::ReductionPlan plan;
  plan.workload = scenario.workload;
  for (std::size_t i = 0; i < scenario.workload.nFiles; ++i) {
    // Relative to the plan file — the emitted events sit next to it.
    plan.eventFiles.push_back(std::filesystem::path(
                                  rawRunFilePath(".", scenario.workload.name,
                                                 i))
                                  .filename()
                                  .string());
  }
  // Recorded raw streams are reduced the way the DAQ recorded them.
  plan.config.loadMode = core::LoadMode::RawTof;
  return plan;
}

ScenarioGroundTruth computeGroundTruth(const Scenario& scenario) {
  const ExperimentSetup setup(scenario.workload);
  const EventGenerator generator = setup.makeGenerator();

  ScenarioGroundTruth truth;
  double weightSum = 0.0;
  double weightCompensation = 0.0;
  std::vector<unsigned char> scratch;
  for (std::size_t i = 0; i < scenario.workload.nFiles; ++i) {
    const RawEventList events = generator.generateRaw(i);
    accumulateRun(events, truth, weightSum, weightCompensation, scratch);
  }
  truth.totalWeight = weightSum + weightCompensation;

  const core::ReductionPlan plan = scenarioPlan(scenario);
  const std::string planText = core::planToIni(plan).serialize();
  truth.planCrc = crc32(planText.data(), planText.size());
  return truth;
}

EmittedScenario writeScenario(const Scenario& scenario,
                              const std::string& directory) {
  std::filesystem::create_directories(directory);

  const ExperimentSetup setup(scenario.workload);
  const EventGenerator generator = setup.makeGenerator();

  EmittedScenario emitted;
  ScenarioGroundTruth truth;
  double weightSum = 0.0;
  double weightCompensation = 0.0;
  std::vector<unsigned char> scratch;
  for (std::size_t i = 0; i < scenario.workload.nFiles; ++i) {
    const RawEventList events = generator.generateRaw(i);
    const std::string path =
        rawRunFilePath(directory, scenario.workload.name, i);
    saveRawRunFile(path, generator.runInfo(i), events);
    emitted.eventFiles.push_back(path);
    accumulateRun(events, truth, weightSum, weightCompensation, scratch);
  }
  truth.totalWeight = weightSum + weightCompensation;

  const core::ReductionPlan plan = scenarioPlan(scenario);
  const std::string planText = core::planToIni(plan).serialize();
  truth.planCrc = crc32(planText.data(), planText.size());
  emitted.planPath =
      (std::filesystem::path(directory) / planFileName(scenario)).string();
  {
    std::ofstream out(emitted.planPath, std::ios::binary);
    if (!out) {
      throw IOError("cannot write plan: " + emitted.planPath);
    }
    out << planText;
  }

  IniFile manifest;
  manifest.set("scenario", "index", std::to_string(scenario.index));
  manifest.set("scenario", "name", scenario.name);
  manifest.set("scenario", "shape", instrumentShapeName(scenario.shape));
  manifest.set("scenario", "mask_fraction",
               strfmt("%.17g", scenario.maskFraction));
  manifest.set("scenario", "point_group", scenario.workload.pointGroup);
  manifest.set("files", "plan", planFileName(scenario));
  manifest.set("files", "count", std::to_string(emitted.eventFiles.size()));
  for (std::size_t i = 0; i < emitted.eventFiles.size(); ++i) {
    manifest.set("files", "event_" + std::to_string(i),
                 std::filesystem::path(emitted.eventFiles[i])
                     .filename()
                     .string());
  }
  manifest.set("truth", "event_count", std::to_string(truth.eventCount));
  manifest.set("truth", "total_weight", strfmt("%.17g", truth.totalWeight));
  manifest.set("truth", "events_crc", std::to_string(truth.eventsCrc));
  manifest.set("truth", "plan_crc", std::to_string(truth.planCrc));
  emitted.manifestPath =
      (std::filesystem::path(directory) / manifestFileName(scenario))
          .string();
  manifest.save(emitted.manifestPath);

  emitted.truth = truth;
  return emitted;
}

ScenarioGroundTruth verifyEmittedScenario(const std::string& manifestPath) {
  const IniFile manifest = IniFile::load(manifestPath);
  const std::filesystem::path directory =
      std::filesystem::path(manifestPath).parent_path();

  ScenarioGroundTruth stamped;
  stamped.eventCount = static_cast<std::size_t>(
      manifest.getInt("truth", "event_count"));
  stamped.totalWeight = manifest.getDouble("truth", "total_weight");
  stamped.eventsCrc = static_cast<std::uint32_t>(
      manifest.getInt("truth", "events_crc"));
  stamped.planCrc =
      static_cast<std::uint32_t>(manifest.getInt("truth", "plan_crc"));

  // Re-derive everything from the artifacts; never consult the
  // generator (that is the whole point of the hidden ground truth).
  const std::string planText = readFileText(
      (directory / manifest.getString("files", "plan")).string());
  const std::uint32_t planCrc = crc32(planText.data(), planText.size());
  if (planCrc != stamped.planCrc) {
    throw InvalidArgument(strfmt(
        "scenario plan CRC mismatch: manifest says %u, plan text has %u",
        stamped.planCrc, planCrc));
  }

  ScenarioGroundTruth derived;
  derived.planCrc = planCrc;
  double weightSum = 0.0;
  double weightCompensation = 0.0;
  std::vector<unsigned char> scratch;
  const auto count =
      static_cast<std::size_t>(manifest.getInt("files", "count"));
  for (std::size_t i = 0; i < count; ++i) {
    const std::string path =
        (directory / manifest.getString("files", "event_" +
                                                     std::to_string(i)))
            .string();
    const RawRunFileContent content = loadRawRunFile(path);
    accumulateRun(content.events, derived, weightSum, weightCompensation,
                  scratch);
  }
  derived.totalWeight = weightSum + weightCompensation;

  if (derived.eventCount != stamped.eventCount) {
    throw InvalidArgument(strfmt(
        "scenario event count mismatch: manifest says %zu, files hold %zu",
        stamped.eventCount, derived.eventCount));
  }
  if (derived.eventsCrc != stamped.eventsCrc) {
    throw InvalidArgument(strfmt(
        "scenario events CRC mismatch: manifest says %u, files hash to %u",
        stamped.eventsCrc, derived.eventsCrc));
  }
  // The weight sum re-runs the same Neumaier order, so bit equality is
  // the correct comparison (a tolerance would mask real drift).
  if (derived.totalWeight != stamped.totalWeight) {
    throw InvalidArgument(strfmt(
        "scenario total weight mismatch: manifest says %.17g, files sum "
        "to %.17g",
        stamped.totalWeight, derived.totalWeight));
  }
  return derived;
}

} // namespace vates::scenario
