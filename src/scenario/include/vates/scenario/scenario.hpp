#pragma once
/// \file scenario.hpp
/// Virtual-experiment scenario generation — parameterized synthetic
/// experiments with *hidden ground truth*, the test-data counterpart of
/// the paper's artifact methodology ("The CORELLI and TOPAZ reduction
/// files were modified to match the parameters used in the proxies").
///
/// A Scenario is one fully specified virtual experiment: instrument
/// shape (CORELLI-style cylinder or TOPAZ-style rectangular banks),
/// lattice constrained to the point group's crystal family, any of the
/// 21 supported point groups, wavelength band, detector-mask fraction,
/// goniometer sequence, and event statistics.  Every parameter derives
/// deterministically from (index, matrixSeed) — no wall clock, no
/// global state — so scenario N is bitwise the same scenario on every
/// machine, forever.
///
/// The ground-truth scheme follows the synthetic-device pattern: the
/// generator *knows* what it emitted (event count, Neumaier-summed
/// total weight, a CRC over the canonical event serialization, a CRC
/// over the plan text) and stamps those into a manifest next to the
/// emitted artifacts.  Verification then recomputes everything from the
/// artifacts alone — the emitted .nxl event files and the plan INI —
/// and compares against the stamp.  A verifier that trusted the
/// generator's in-memory state would always pass; re-deriving from the
/// files is what catches serialization bugs, truncated writes, and
/// drifted generators.

#include "vates/core/plan.hpp"
#include "vates/events/workload.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace vates::scenario {

/// The two detector layouts of the paper's Table II instruments.
enum class InstrumentShape : int {
  Cylinder = 0, ///< CORELLI-style cylindrical array
  Banks = 1,    ///< TOPAZ-style flat square banks on a sphere
};

/// "cylinder", "banks".
const char* instrumentShapeName(InstrumentShape shape) noexcept;

/// Default matrix seed — part of the scenario contract: goldens and
/// committed example plans are generated with it.
inline constexpr std::uint64_t kDefaultMatrixSeed = 0x5ce11a71000000ULL;

/// One virtual experiment.
struct Scenario {
  std::string name; ///< "scn<index>-<shape>-m<mask%>-<pointgroup>"
  std::size_t index = 0;
  InstrumentShape shape = InstrumentShape::Cylinder;
  double maskFraction = 0.0;
  WorkloadSpec workload;
};

/// Deterministically derive scenario \p index of the matrix seeded by
/// \p matrixSeed.  The structured axes cycle so any 24 consecutive
/// indices cover all 21 point groups, both instrument shapes, and the
/// mask fractions {0, 0.3, 0.9}:
///
///   point group   = the canonical 21-group list[index % 21]
///   shape         = index % 2          (cylinder, banks, ...)
///   mask fraction = {0, 0.3, 0.9}[index % 3]
///
/// Everything else (lattice constants within the point group's crystal
/// family, centering, detector/file/event counts, wavelength band,
/// binning, extents, goniometer schedule, Bragg model, event seed) is
/// drawn from Xoshiro256(matrixSeed, index) in a fixed order.
Scenario makeScenario(std::size_t index,
                      std::uint64_t matrixSeed = kDefaultMatrixSeed);

/// Scenarios [0, count) of one matrix.
std::vector<Scenario> scenarioMatrix(std::size_t count = 24,
                                     std::uint64_t matrixSeed =
                                         kDefaultMatrixSeed);

/// What the generator knows it emitted — stamped into the manifest at
/// emission, recomputed from the artifacts at verification.
struct ScenarioGroundTruth {
  std::size_t eventCount = 0; ///< events across all runs
  /// Neumaier-compensated sum of every event weight, run order then
  /// event order — bit-reproducible, so verification compares with ==.
  double totalWeight = 0.0;
  /// CRC-32 chained over the canonical little-endian serialization of
  /// every event in order: u32 detector, f64 TOF, u32 pulse, f64
  /// weight; files chain in run order.
  std::uint32_t eventsCrc = 0;
  /// CRC-32 of the emitted plan INI text.
  std::uint32_t planCrc = 0;
};

/// The reduction plan a scenario emits: its workload, a default
/// execution config (scientist-editable after emission), and the
/// event_files entries naming the emitted raw-run files *relative* to
/// the plan — which is what lets committed example plans load from any
/// working directory (loadReductionPlan resolves them against the plan's
/// own location).
core::ReductionPlan scenarioPlan(const Scenario& scenario);

/// The ground truth of \p scenario, computed through the generator's
/// own internal path (ExperimentSetup → EventGenerator::generateRaw per
/// run).  This is the "hidden" side of the contract; verification never
/// calls it.
ScenarioGroundTruth computeGroundTruth(const Scenario& scenario);

/// The artifacts writeScenario() produced.
struct EmittedScenario {
  std::vector<std::string> eventFiles; ///< raw-run .nxl, run order
  std::string planPath;
  std::string manifestPath;
  ScenarioGroundTruth truth; ///< as stamped into the manifest
};

/// Emit \p scenario into \p directory: one raw-run event file per run,
/// the plan INI (event_files relative), and the ground-truth manifest.
/// Deterministic: emitting the same scenario twice produces
/// byte-identical files.
EmittedScenario writeScenario(const Scenario& scenario,
                              const std::string& directory);

/// Re-derive the ground truth of an emitted scenario from its artifacts
/// alone — re-read every event file, re-serialize, re-CRC, re-sum, and
/// CRC the plan text — and compare against the manifest stamp.  Throws
/// InvalidArgument naming the first mismatch; returns the (verified)
/// truth on success.
ScenarioGroundTruth verifyEmittedScenario(const std::string& manifestPath);

} // namespace vates::scenario
