#include "vates/workflow/scheduler.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"
#include "vates/support/timer.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

namespace vates::wf {

double WorkflowReport::totalWork() const noexcept {
  double sum = 0.0;
  for (const TaskTiming& timing : timings) {
    sum += timing.seconds;
  }
  return sum;
}

double WorkflowReport::speedup() const noexcept {
  return makespan > 0.0 ? totalWork() / makespan : 0.0;
}

std::string WorkflowReport::table(const std::string& title) const {
  std::ostringstream os;
  os << title << '\n';
  os << strfmt("%-32s %10s %10s %8s\n", "task", "start (s)", "dur (s)",
               "worker");
  os << std::string(64, '-') << '\n';
  for (const TaskTiming& timing : timings) {
    os << strfmt("%-32s %10.4f %10.4f %8u\n", timing.name.c_str(),
                 timing.startOffset, timing.seconds, timing.worker);
  }
  os << std::string(64, '-') << '\n';
  os << strfmt("makespan %.4f s, work %.4f s, task overlap %.2fx\n", makespan,
               totalWork(), speedup());
  return os.str();
}

Scheduler::Scheduler(unsigned workers) : workers_(workers) {
  VATES_REQUIRE(workers >= 1, "scheduler needs at least one worker");
}

WorkflowReport Scheduler::runSiblings(const std::vector<NamedTask>& tasks) const {
  TaskGraph graph;
  for (const NamedTask& task : tasks) {
    graph.addTask(task.first, task.second);
  }
  return run(graph);
}

WorkflowReport Scheduler::run(const TaskGraph& graph) const {
  graph.topologicalOrder(); // validates (throws on cycles)

  WorkflowReport report;
  if (graph.empty()) {
    return report;
  }

  std::mutex mutex;
  std::condition_variable ready;
  std::deque<TaskId> runnable;
  std::vector<std::size_t> degrees = graph.indegrees();
  std::size_t completed = 0;
  bool failed = false;
  std::exception_ptr firstError;
  const WallTimer workflowClock;

  for (TaskId id = 0; id < graph.size(); ++id) {
    if (degrees[id] == 0) {
      runnable.push_back(id);
    }
  }

  auto workerLoop = [&](unsigned workerIndex) {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      ready.wait(lock, [&] {
        return failed || !runnable.empty() || completed == graph.size();
      });
      if (failed || completed == graph.size()) {
        return;
      }
      const TaskId id = runnable.front();
      runnable.pop_front();
      lock.unlock();

      const double startOffset = workflowClock.seconds();
      WallTimer taskClock;
      std::exception_ptr error;
      try {
        graph.runTask(id);
      } catch (...) {
        error = std::current_exception();
      }
      const double seconds = taskClock.seconds();

      lock.lock();
      if (error) {
        if (!failed) {
          failed = true;
          firstError = error;
        }
        ready.notify_all();
        return;
      }
      report.timings.push_back(
          TaskTiming{graph.name(id), seconds, workerIndex, startOffset});
      ++completed;
      for (const TaskId next : graph.successors(id)) {
        if (--degrees[next] == 0) {
          runnable.push_back(next);
        }
      }
      ready.notify_all();
      if (completed == graph.size()) {
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers_);
  for (unsigned worker = 0; worker < workers_; ++worker) {
    threads.emplace_back(workerLoop, worker);
  }
  for (auto& thread : threads) {
    thread.join();
  }

  if (firstError) {
    std::rethrow_exception(firstError);
  }
  report.makespan = workflowClock.seconds();
  return report;
}

} // namespace vates::wf
