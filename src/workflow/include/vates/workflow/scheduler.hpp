#pragma once
/// \file scheduler.hpp
/// Concurrent executor for TaskGraph — dependency-respecting dispatch
/// over a fixed worker count, with per-task timing and fail-fast
/// semantics.

#include "vates/workflow/task_graph.hpp"

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace vates::wf {

/// Timing record for one executed task.
struct TaskTiming {
  std::string name;
  double seconds = 0.0;
  unsigned worker = 0;
  double startOffset = 0.0; ///< seconds after workflow start
};

/// Outcome of one workflow execution.
struct WorkflowReport {
  std::vector<TaskTiming> timings; ///< completion order
  double makespan = 0.0;           ///< wall time of the whole graph

  /// Sum of all task wall-clock durations.
  double totalWork() const noexcept;

  /// Achieved task overlap: totalWork / makespan.  This measures how
  /// many tasks ran concurrently on average — true speedup only when
  /// each worker has its own core (time-sliced cores stretch the
  /// per-task durations instead).
  double speedup() const noexcept;

  /// Fixed-width rendering (task, start, duration, worker).
  std::string table(const std::string& title) const;
};

/// Executes TaskGraphs.  Fail-fast: the first task exception stops
/// dispatch of not-yet-started tasks (running ones finish), and the
/// exception is rethrown from run() after all workers drain.
class Scheduler {
public:
  /// \p workers >= 1 concurrent executors.
  explicit Scheduler(unsigned workers);

  unsigned workers() const noexcept { return workers_; }

  /// Run the whole graph; validates (cycle check) first.
  WorkflowReport run(const TaskGraph& graph) const;

  /// A task for runSiblings(): a name plus the work.
  using NamedTask = std::pair<std::string, std::function<void()>>;

  /// Concurrent-sibling execution path: run independent tasks (an
  /// edgeless graph) concurrently across this scheduler's workers and
  /// block until all complete.  Same fail-fast semantics as run().
  /// This is what the reduction pipeline's overlapped engine uses to
  /// execute MDNorm and BinMD for one run side by side — they write
  /// disjoint grids, so there is no edge between them.
  WorkflowReport runSiblings(const std::vector<NamedTask>& tasks) const;

private:
  unsigned workers_;
};

} // namespace vates::wf
