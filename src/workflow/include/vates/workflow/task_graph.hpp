#pragma once
/// \file task_graph.hpp
/// Dependency graph of named tasks — the orchestration substrate for
/// the facility-integration workflow of the paper's Fig. 1.
///
/// The DOE IRI program the paper targets treats a measurement campaign
/// as a *workflow*: acquisition → load → convert → reduce → publish
/// stages with data dependencies, scheduled over heterogeneous
/// resources (the related-work systems — ADARA, CALVERA, INTERSECT —
/// are all workflow managers at heart).  TaskGraph models the
/// dependency structure; Scheduler (scheduler.hpp) executes it.
///
/// Tasks are arbitrary callables.  Edges mean "must complete before".
/// Cycles are rejected at validation time with the offending task
/// named.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace vates::wf {

using TaskId = std::size_t;

class TaskGraph {
public:
  /// Register a task; returns its id.  Work runs exactly once.
  TaskId addTask(std::string name, std::function<void()> work);

  /// Require \p before to finish before \p after may start.
  /// Duplicate edges are ignored.
  void addDependency(TaskId before, TaskId after);

  std::size_t size() const noexcept { return names_.size(); }
  bool empty() const noexcept { return names_.empty(); }
  const std::string& name(TaskId id) const;

  /// Direct successors of \p id.
  const std::vector<TaskId>& successors(TaskId id) const;

  /// In-degree (count of prerequisite tasks) per task.
  std::vector<std::size_t> indegrees() const;

  /// Kahn's algorithm; throws InvalidArgument naming a task on any
  /// cycle.  Also the validation entry point.
  std::vector<TaskId> topologicalOrder() const;

  /// Execute one task's work (used by the scheduler).
  void runTask(TaskId id) const;

private:
  void checkId(TaskId id) const;

  std::vector<std::string> names_;
  std::vector<std::function<void()>> work_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<std::vector<TaskId>> predecessors_;
};

} // namespace vates::wf
