#include "vates/workflow/task_graph.hpp"

#include "vates/support/error.hpp"

#include <algorithm>
#include <deque>

namespace vates::wf {

TaskId TaskGraph::addTask(std::string name, std::function<void()> work) {
  VATES_REQUIRE(static_cast<bool>(work), "task needs a callable");
  const TaskId id = names_.size();
  names_.push_back(std::move(name));
  work_.push_back(std::move(work));
  successors_.emplace_back();
  predecessors_.emplace_back();
  return id;
}

void TaskGraph::checkId(TaskId id) const {
  VATES_REQUIRE(id < names_.size(), "task id out of range");
}

void TaskGraph::addDependency(TaskId before, TaskId after) {
  checkId(before);
  checkId(after);
  VATES_REQUIRE(before != after, "a task cannot depend on itself");
  auto& successors = successors_[before];
  if (std::find(successors.begin(), successors.end(), after) !=
      successors.end()) {
    return; // duplicate edge
  }
  successors.push_back(after);
  predecessors_[after].push_back(before);
}

const std::string& TaskGraph::name(TaskId id) const {
  checkId(id);
  return names_[id];
}

const std::vector<TaskId>& TaskGraph::successors(TaskId id) const {
  checkId(id);
  return successors_[id];
}

std::vector<std::size_t> TaskGraph::indegrees() const {
  std::vector<std::size_t> degrees(names_.size());
  for (TaskId id = 0; id < names_.size(); ++id) {
    degrees[id] = predecessors_[id].size();
  }
  return degrees;
}

std::vector<TaskId> TaskGraph::topologicalOrder() const {
  std::vector<std::size_t> degrees = indegrees();
  std::deque<TaskId> ready;
  for (TaskId id = 0; id < names_.size(); ++id) {
    if (degrees[id] == 0) {
      ready.push_back(id);
    }
  }
  std::vector<TaskId> order;
  order.reserve(names_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const TaskId next : successors_[id]) {
      if (--degrees[next] == 0) {
        ready.push_back(next);
      }
    }
  }
  if (order.size() != names_.size()) {
    // Some task kept a non-zero in-degree: it sits on a cycle.
    for (TaskId id = 0; id < names_.size(); ++id) {
      if (degrees[id] != 0) {
        throw InvalidArgument("workflow graph has a cycle through task '" +
                              names_[id] + "'");
      }
    }
  }
  return order;
}

void TaskGraph::runTask(TaskId id) const {
  checkId(id);
  work_[id]();
}

} // namespace vates::wf
