#include "vates/kernels/binmd.hpp"

#include "vates/parallel/atomics.hpp"
#include "vates/support/error.hpp"

namespace vates {

void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram) {
  VATES_REQUIRE(histogram.data != nullptr, "histogram view has no data");
  if (inputs.nEvents == 0 || inputs.transforms.empty()) {
    return;
  }
  VATES_REQUIRE(inputs.qx != nullptr && inputs.qy != nullptr &&
                    inputs.qz != nullptr && inputs.signal != nullptr,
                "event columns must be non-null");

  const M33* transforms = inputs.transforms.data();
  const std::size_t nOps = inputs.transforms.size();
  const double* qx = inputs.qx;
  const double* qy = inputs.qy;
  const double* qz = inputs.qz;
  const double* signal = inputs.signal;
  const GridView grid = histogram;

  executor.parallelFor2D(
      nOps, inputs.nEvents,
      [=](std::size_t op, std::size_t event) {
        const V3 q{qx[event], qy[event], qz[event]};
        const V3 p = transforms[op] * q;
        const std::size_t bin = grid.locate(p);
        if (bin < grid.size()) {
          atomicAdd(&grid.data[bin], signal[event]);
        }
      },
      "binmd");
}

void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram, const GridView& errorSqHistogram) {
  VATES_REQUIRE(histogram.data != nullptr, "histogram view has no data");
  VATES_REQUIRE(errorSqHistogram.data != nullptr,
                "error histogram view has no data");
  VATES_REQUIRE(histogram.size() == errorSqHistogram.size(),
                "signal and error histograms disagree in shape");
  if (inputs.nEvents == 0 || inputs.transforms.empty()) {
    return;
  }
  VATES_REQUIRE(inputs.qx != nullptr && inputs.qy != nullptr &&
                    inputs.qz != nullptr && inputs.signal != nullptr &&
                    inputs.errorSq != nullptr,
                "event columns (incl. errorSq) must be non-null");

  const M33* transforms = inputs.transforms.data();
  const std::size_t nOps = inputs.transforms.size();
  const double* qx = inputs.qx;
  const double* qy = inputs.qy;
  const double* qz = inputs.qz;
  const double* signal = inputs.signal;
  const double* errorSq = inputs.errorSq;
  const GridView grid = histogram;
  const GridView errorGrid = errorSqHistogram;

  executor.parallelFor2D(
      nOps, inputs.nEvents,
      [=](std::size_t op, std::size_t event) {
        const V3 q{qx[event], qy[event], qz[event]};
        const V3 p = transforms[op] * q;
        const std::size_t bin = grid.locate(p);
        if (bin < grid.size()) {
          atomicAdd(&grid.data[bin], signal[event]);
          atomicAdd(&errorGrid.data[bin], errorSq[event]);
        }
      },
      "binmd_with_errors");
}

void runBinMDIdentity(const Executor& executor, const M33& transform,
                      const BinMDInputs& inputs, const GridView& histogram) {
  BinMDInputs single = inputs;
  single.transforms = std::span<const M33>(&transform, 1);
  runBinMD(executor, single, histogram);
}

} // namespace vates
