#include "vates/kernels/binmd.hpp"

#include "vates/histogram/grid_accumulator.hpp"
#include "vates/kernels/simd_batch.hpp"
#include "vates/support/error.hpp"

#include <bit>

namespace vates {

namespace {

/// Events per work item on the vector path.  One block's SoA columns
/// (3 × 256 × 8 B coordinates + signal) plus its DepositBlock stay
/// L1-resident while the (op, block) item runs; the launch becomes
/// nOps × nBlocks, preserving the scalar launch's op-major /
/// event-ascending global order on Backend::Serial.
constexpr std::size_t kEventBlock = 256;

/// Run events [begin, end) of one symmetry op through the vector
/// locate — full registers through the lanes, the scalar expressions
/// for the tail (bitwise the same result; simd_batch.hpp) — calling
/// depositAt(event, bin) for every event that lands inside the grid,
/// in ascending event order (low set bits drain first).
template <typename DepositFn>
inline void binEventBlock(const simd::BinLocateBatch& locate,
                          const GridView& grid, const M33& transform,
                          const double* qx, const double* qy,
                          const double* qz, std::size_t begin,
                          std::size_t end, DepositFn&& depositAt) {
  std::size_t event = begin;
  std::size_t bins[simd::kWidth];
  for (; event + simd::kWidth <= end; event += simd::kWidth) {
    unsigned valid = locate.locate(qx + event, qy + event, qz + event, bins);
    while (valid != 0u) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(valid));
      valid &= valid - 1u;
      depositAt(event + lane, bins[lane]);
    }
  }
  for (; event < end; ++event) {
    const V3 q{qx[event], qy[event], qz[event]};
    const V3 p = transform * q;
    const std::size_t bin = grid.locate(p);
    if (bin < grid.size()) {
      depositAt(event, bin);
    }
  }
}

} // namespace

void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram, const AccumulateOptions& accumulate,
              SimdMode simd) {
  VATES_REQUIRE(histogram.data != nullptr, "histogram view has no data");
  if (inputs.nEvents == 0 || inputs.transforms.empty()) {
    return;
  }
  VATES_REQUIRE(inputs.qx != nullptr && inputs.qy != nullptr &&
                    inputs.qz != nullptr && inputs.signal != nullptr,
                "event columns must be non-null");

  const M33* transforms = inputs.transforms.data();
  const std::size_t nOps = inputs.transforms.size();
  const std::size_t nEvents = inputs.nEvents;
  const double* qx = inputs.qx;
  const double* qy = inputs.qy;
  const double* qz = inputs.qz;
  const double* signal = inputs.signal;
  const GridView grid = histogram;

  GridAccumulator accumulator(histogram, executor, accumulate);
  const AccumulatorRef sink = accumulator.ref();

  if (simdUseVector(simd, executor.backend())) {
    const std::size_t nBlocks = (nEvents + kEventBlock - 1) / kEventBlock;
    executor.parallelFor2DIndexed(
        nOps, nBlocks,
        [=](std::size_t op, std::size_t block, unsigned worker) {
          const std::size_t begin = block * kEventBlock;
          const std::size_t end =
              begin + kEventBlock < nEvents ? begin + kEventBlock : nEvents;
          const simd::BinLocateBatch locate(grid, transforms[op]);
          DepositBlock staged;
          binEventBlock(locate, grid, transforms[op], qx, qy, qz, begin, end,
                        [&](std::size_t event, std::size_t bin) {
                          if (staged.full()) {
                            staged.flush(sink, worker);
                          }
                          staged.push(bin, signal[event]);
                        });
          staged.flush(sink, worker);
        },
        "binmd");
    accumulator.commit();
    return;
  }

  executor.parallelFor2DIndexed(
      nOps, nEvents,
      [=](std::size_t op, std::size_t event, unsigned worker) {
        const V3 q{qx[event], qy[event], qz[event]};
        const V3 p = transforms[op] * q;
        const std::size_t bin = grid.locate(p);
        if (bin < grid.size()) {
          sink.add(worker, bin, signal[event]);
        }
      },
      "binmd");

  accumulator.commit();
}

void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram, const GridView& errorSqHistogram,
              const AccumulateOptions& accumulate, SimdMode simd) {
  VATES_REQUIRE(histogram.data != nullptr, "histogram view has no data");
  VATES_REQUIRE(errorSqHistogram.data != nullptr,
                "error histogram view has no data");
  VATES_REQUIRE(histogram.size() == errorSqHistogram.size(),
                "signal and error histograms disagree in shape");
  if (inputs.nEvents == 0 || inputs.transforms.empty()) {
    return;
  }
  VATES_REQUIRE(inputs.qx != nullptr && inputs.qy != nullptr &&
                    inputs.qz != nullptr && inputs.signal != nullptr &&
                    inputs.errorSq != nullptr,
                "event columns (incl. errorSq) must be non-null");

  const M33* transforms = inputs.transforms.data();
  const std::size_t nOps = inputs.transforms.size();
  const std::size_t nEvents = inputs.nEvents;
  const double* qx = inputs.qx;
  const double* qy = inputs.qy;
  const double* qz = inputs.qz;
  const double* signal = inputs.signal;
  const double* errorSq = inputs.errorSq;
  const GridView grid = histogram;

  // Two accumulators share one strategy decision (the signal grid's);
  // forcing them to agree keeps the memory story predictable — either
  // both grids replicate or neither does.
  GridAccumulator signalAccumulator(histogram, executor, accumulate);
  AccumulateOptions errorOptions = accumulate;
  errorOptions.strategy = signalAccumulator.strategy();
  GridAccumulator errorAccumulator(errorSqHistogram, executor, errorOptions);
  const AccumulatorRef signalSink = signalAccumulator.ref();
  const AccumulatorRef errorSink = errorAccumulator.ref();

  if (simdUseVector(simd, executor.backend())) {
    const std::size_t nBlocks = (nEvents + kEventBlock - 1) / kEventBlock;
    executor.parallelFor2DIndexed(
        nOps, nBlocks,
        [=](std::size_t op, std::size_t block, unsigned worker) {
          const std::size_t begin = block * kEventBlock;
          const std::size_t end =
              begin + kEventBlock < nEvents ? begin + kEventBlock : nEvents;
          const simd::BinLocateBatch locate(grid, transforms[op]);
          DepositBlock stagedSignal;
          DepositBlock stagedError;
          binEventBlock(locate, grid, transforms[op], qx, qy, qz, begin, end,
                        [&](std::size_t event, std::size_t bin) {
                          if (stagedSignal.full()) {
                            stagedSignal.flush(signalSink, worker);
                            stagedError.flush(errorSink, worker);
                          }
                          stagedSignal.push(bin, signal[event]);
                          stagedError.push(bin, errorSq[event]);
                        });
          stagedSignal.flush(signalSink, worker);
          stagedError.flush(errorSink, worker);
        },
        "binmd_with_errors");
    signalAccumulator.commit();
    errorAccumulator.commit();
    return;
  }

  executor.parallelFor2DIndexed(
      nOps, nEvents,
      [=](std::size_t op, std::size_t event, unsigned worker) {
        const V3 q{qx[event], qy[event], qz[event]};
        const V3 p = transforms[op] * q;
        const std::size_t bin = grid.locate(p);
        if (bin < grid.size()) {
          signalSink.add(worker, bin, signal[event]);
          errorSink.add(worker, bin, errorSq[event]);
        }
      },
      "binmd_with_errors");

  signalAccumulator.commit();
  errorAccumulator.commit();
}

void runBinMDIdentity(const Executor& executor, const M33& transform,
                      const BinMDInputs& inputs, const GridView& histogram,
                      const AccumulateOptions& accumulate, SimdMode simd) {
  BinMDInputs single = inputs;
  single.transforms = std::span<const M33>(&transform, 1);
  runBinMD(executor, single, histogram, accumulate, simd);
}

} // namespace vates
