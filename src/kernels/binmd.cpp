#include "vates/kernels/binmd.hpp"

#include "vates/histogram/grid_accumulator.hpp"
#include "vates/support/error.hpp"

namespace vates {

void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram, const AccumulateOptions& accumulate) {
  VATES_REQUIRE(histogram.data != nullptr, "histogram view has no data");
  if (inputs.nEvents == 0 || inputs.transforms.empty()) {
    return;
  }
  VATES_REQUIRE(inputs.qx != nullptr && inputs.qy != nullptr &&
                    inputs.qz != nullptr && inputs.signal != nullptr,
                "event columns must be non-null");

  const M33* transforms = inputs.transforms.data();
  const std::size_t nOps = inputs.transforms.size();
  const double* qx = inputs.qx;
  const double* qy = inputs.qy;
  const double* qz = inputs.qz;
  const double* signal = inputs.signal;
  const GridView grid = histogram;

  GridAccumulator accumulator(histogram, executor, accumulate);
  const AccumulatorRef sink = accumulator.ref();

  executor.parallelFor2DIndexed(
      nOps, inputs.nEvents,
      [=](std::size_t op, std::size_t event, unsigned worker) {
        const V3 q{qx[event], qy[event], qz[event]};
        const V3 p = transforms[op] * q;
        const std::size_t bin = grid.locate(p);
        if (bin < grid.size()) {
          sink.add(worker, bin, signal[event]);
        }
      },
      "binmd");

  accumulator.commit();
}

void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram, const GridView& errorSqHistogram,
              const AccumulateOptions& accumulate) {
  VATES_REQUIRE(histogram.data != nullptr, "histogram view has no data");
  VATES_REQUIRE(errorSqHistogram.data != nullptr,
                "error histogram view has no data");
  VATES_REQUIRE(histogram.size() == errorSqHistogram.size(),
                "signal and error histograms disagree in shape");
  if (inputs.nEvents == 0 || inputs.transforms.empty()) {
    return;
  }
  VATES_REQUIRE(inputs.qx != nullptr && inputs.qy != nullptr &&
                    inputs.qz != nullptr && inputs.signal != nullptr &&
                    inputs.errorSq != nullptr,
                "event columns (incl. errorSq) must be non-null");

  const M33* transforms = inputs.transforms.data();
  const std::size_t nOps = inputs.transforms.size();
  const double* qx = inputs.qx;
  const double* qy = inputs.qy;
  const double* qz = inputs.qz;
  const double* signal = inputs.signal;
  const double* errorSq = inputs.errorSq;
  const GridView grid = histogram;

  // Two accumulators share one strategy decision (the signal grid's);
  // forcing them to agree keeps the memory story predictable — either
  // both grids replicate or neither does.
  GridAccumulator signalAccumulator(histogram, executor, accumulate);
  AccumulateOptions errorOptions = accumulate;
  errorOptions.strategy = signalAccumulator.strategy();
  GridAccumulator errorAccumulator(errorSqHistogram, executor, errorOptions);
  const AccumulatorRef signalSink = signalAccumulator.ref();
  const AccumulatorRef errorSink = errorAccumulator.ref();

  executor.parallelFor2DIndexed(
      nOps, inputs.nEvents,
      [=](std::size_t op, std::size_t event, unsigned worker) {
        const V3 q{qx[event], qy[event], qz[event]};
        const V3 p = transforms[op] * q;
        const std::size_t bin = grid.locate(p);
        if (bin < grid.size()) {
          signalSink.add(worker, bin, signal[event]);
          errorSink.add(worker, bin, errorSq[event]);
        }
      },
      "binmd_with_errors");

  signalAccumulator.commit();
  errorAccumulator.commit();
}

void runBinMDIdentity(const Executor& executor, const M33& transform,
                      const BinMDInputs& inputs, const GridView& histogram,
                      const AccumulateOptions& accumulate) {
  BinMDInputs single = inputs;
  single.transforms = std::span<const M33>(&transform, 1);
  runBinMD(executor, single, histogram, accumulate);
}

} // namespace vates
