#include "vates/kernels/symmetrize.hpp"

#include "vates/support/error.hpp"

#include <vector>

namespace vates {

Histogram3D symmetrizeFold(const Executor& executor, const Histogram3D& input,
                           std::span<const M33> symmetryOps,
                           const Projection& projection) {
  VATES_REQUIRE(!symmetryOps.empty(), "need at least one symmetry operation");

  // Pre-compose per-op maps in projected coordinates:
  // p' = W⁻¹ · op · W · p.
  std::vector<M33> projectedOps;
  projectedOps.reserve(symmetryOps.size());
  for (const M33& op : symmetryOps) {
    projectedOps.push_back(projection.Winv() * op * projection.W());
  }

  Histogram3D output = input.emptyLike();
  // gridView() needs a mutable histogram; the kernel only reads through
  // this view.
  const GridView source = const_cast<Histogram3D&>(input).gridView();
  const GridView target = output.gridView();
  const M33* ops = projectedOps.data();
  const std::size_t nOps = projectedOps.size();
  const std::size_t ny = target.n[1];
  const std::size_t nz = target.n[2];

  executor.parallelFor(
      output.size(),
      [=](std::size_t flat) {
        // Decompose the flat index into (i, j, k) and form the center.
        const std::size_t k = flat % nz;
        const std::size_t j = (flat / nz) % ny;
        const std::size_t i = flat / (nz * ny);
        const V3 center{
            target.min[0] + (static_cast<double>(i) + 0.5) /
                                target.inverseWidth[0],
            target.min[1] + (static_cast<double>(j) + 0.5) /
                                target.inverseWidth[1],
            target.min[2] + (static_cast<double>(k) + 0.5) /
                                target.inverseWidth[2],
        };
        double sum = 0.0;
        for (std::size_t op = 0; op < nOps; ++op) {
          const V3 image = ops[op] * center;
          const std::size_t bin = source.locate(image);
          if (bin < source.size()) {
            sum += source.data[bin];
          }
        }
        target.data[flat] = sum; // sole writer of this bin: no atomics
      },
      "symmetrize_fold");
  return output;
}

} // namespace vates
