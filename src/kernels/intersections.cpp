#include "vates/kernels/intersections.hpp"

#include <algorithm>
#include <cmath>

namespace vates {

namespace {
constexpr double kParallelTolerance = 1e-12;

/// Closed-interval containment with a hair of slack for points that sit
/// exactly on a boundary plane (they belong to the trajectory's hull).
inline bool insideAxisClosed(const GridView& grid, std::size_t axis,
                             double value) noexcept {
  const double slack = 1e-9 / grid.inverseWidth[axis];
  return value >= grid.min[axis] - slack && value <= grid.max[axis] + slack;
}

inline bool insideBoxClosed(const GridView& grid, const V3& p) noexcept {
  return insideAxisClosed(grid, 0, p.x) && insideAxisClosed(grid, 1, p.y) &&
         insideAxisClosed(grid, 2, p.z);
}

/// Test one candidate plane crossing and append it if valid.
inline void tryPlane(const GridView& grid, const V3& t, double kMin,
                     double kMax, std::size_t axis, std::size_t plane,
                     double inverseT, Intersection* out,
                     std::size_t& count) noexcept {
  const double edge = grid.planeEdge(axis, plane);
  const double k = edge * inverseT;
  if (k < kMin || k > kMax) {
    return;
  }
  const V3 p = t * k;
  // The crossing must lie within the box on the other two axes.
  for (std::size_t other = 0; other < 3; ++other) {
    if (other != axis && !insideAxisClosed(grid, other, p[other])) {
      return;
    }
  }
  out[count++] = Intersection{p.x, p.y, p.z, k};
}
} // namespace

std::size_t calculateIntersections(const GridView& grid, const V3& t,
                                   double kMin, double kMax,
                                   PlaneSearch strategy, Intersection* out) {
  std::size_t count = 0;

  for (std::size_t axis = 0; axis < 3; ++axis) {
    const double tAxis = t[axis];
    if (std::fabs(tAxis) < kParallelTolerance) {
      continue; // ray parallel to this axis' planes: no crossings
    }
    const double inverseT = 1.0 / tAxis;
    const std::size_t nPlanes = grid.n[axis] + 1;

    if (strategy == PlaneSearch::Linear) {
      // Mantid-style: test every plane of the axis.
      for (std::size_t plane = 0; plane < nPlanes; ++plane) {
        tryPlane(grid, t, kMin, kMax, axis, plane, inverseT, out, count);
      }
    } else {
      // Region-of-interest: only the plane-index interval the segment
      // can reach.  Coordinate range swept on this axis over the band:
      const double c1 = kMin * tAxis;
      const double c2 = kMax * tAxis;
      const double lo = std::max(std::min(c1, c2), grid.min[axis]);
      const double hi = std::min(std::max(c1, c2), grid.max[axis]);
      if (lo > hi) {
        continue; // segment never enters this axis' extent
      }
      const double w = grid.inverseWidth[axis];
      auto first = static_cast<std::ptrdiff_t>(
          std::ceil((lo - grid.min[axis]) * w - 1e-9));
      auto last = static_cast<std::ptrdiff_t>(
          std::floor((hi - grid.min[axis]) * w + 1e-9));
      first = std::max<std::ptrdiff_t>(first, 0);
      last = std::min<std::ptrdiff_t>(last,
                                      static_cast<std::ptrdiff_t>(grid.n[axis]));
      for (std::ptrdiff_t plane = first; plane <= last; ++plane) {
        tryPlane(grid, t, kMin, kMax, axis, static_cast<std::size_t>(plane),
                 inverseT, out, count);
      }
    }
  }

  // Segment endpoints inside the box bound the first/last partial bins.
  for (const double kEnd : {kMin, kMax}) {
    const V3 p = t * kEnd;
    if (insideBoxClosed(grid, p)) {
      out[count++] = Intersection{p.x, p.y, p.z, kEnd};
    }
  }
  return count;
}

} // namespace vates
