#include "vates/kernels/intersections.hpp"

#include <algorithm>
#include <cmath>

namespace vates {

namespace {

/// Closed-interval containment with a hair of slack for points that sit
/// exactly on a boundary plane (they belong to the trajectory's hull).
inline bool insideAxisClosed(const GridView& grid, std::size_t axis,
                             double value) noexcept {
  const double slack = 1e-9 / grid.inverseWidth[axis];
  return value >= grid.min[axis] - slack && value <= grid.max[axis] + slack;
}

inline bool insideBoxClosed(const GridView& grid, const V3& p) noexcept {
  return insideAxisClosed(grid, 0, p.x) && insideAxisClosed(grid, 1, p.y) &&
         insideAxisClosed(grid, 2, p.z);
}

/// True when a lower-indexed, non-parallel axis already emitted a
/// crossing with bitwise this momentum — the ray pierces a grid edge or
/// corner (or a band endpoint coincides with a crossing).  Analytic, no
/// scan of the output buffer: recover the lower axis' nearest plane
/// index from the coordinate at k and re-evaluate tryPlane's exact
/// momentum expression for it.  Only a bitwise match is reported, so
/// suppressing the entry is guaranteed result-neutral (an exact
/// duplicate can only ever bound a zero-width segment, which every
/// consumer skips via its k2 <= k1 guard).
inline bool duplicatesLowerAxis(const GridView& grid, const V3& t,
                                std::size_t axis, double k) noexcept {
  for (std::size_t lower = 0; lower < axis; ++lower) {
    const double tLower = t[lower];
    if (std::fabs(tLower) < kTrajectoryParallelTolerance) {
      continue;
    }
    const double planeFloat =
        (tLower * k - grid.min[lower]) * grid.inverseWidth[lower];
    const auto plane = static_cast<std::ptrdiff_t>(std::llround(planeFloat));
    if (plane < 0 || plane > static_cast<std::ptrdiff_t>(grid.n[lower])) {
      continue;
    }
    const double inverseT = 1.0 / tLower;
    if (grid.planeEdge(lower, static_cast<std::size_t>(plane)) * inverseT ==
        k) {
      return true;
    }
  }
  return false;
}

/// Test one candidate plane crossing and append it if valid.
inline void tryPlane(const GridView& grid, const V3& t, double kMin,
                     double kMax, std::size_t axis, std::size_t plane,
                     double inverseT, Intersection* out,
                     std::size_t& count) noexcept {
  const double edge = grid.planeEdge(axis, plane);
  const double k = edge * inverseT;
  if (k < kMin || k > kMax) {
    return;
  }
  const V3 p = t * k;
  // The crossing must lie within the box on the other two axes.
  for (std::size_t other = 0; other < 3; ++other) {
    if (other != axis && !insideAxisClosed(grid, other, p[other])) {
      return;
    }
  }
  if (duplicatesLowerAxis(grid, t, axis, k)) {
    return; // grid-edge/corner crossing already emitted by a lower axis
  }
  out[count++] = Intersection{p.x, p.y, p.z, k};
}
} // namespace

std::size_t calculateIntersections(const GridView& grid, const V3& t,
                                   double kMin, double kMax,
                                   PlaneSearch strategy, Intersection* out) {
  std::size_t count = 0;

  for (std::size_t axis = 0; axis < 3; ++axis) {
    const double tAxis = t[axis];
    if (std::fabs(tAxis) < kTrajectoryParallelTolerance) {
      continue; // ray parallel to this axis' planes: no crossings
    }
    const double inverseT = 1.0 / tAxis;
    const std::size_t nPlanes = grid.n[axis] + 1;

    if (strategy == PlaneSearch::Linear) {
      // Mantid-style: test every plane of the axis.
      for (std::size_t plane = 0; plane < nPlanes; ++plane) {
        tryPlane(grid, t, kMin, kMax, axis, plane, inverseT, out, count);
      }
    } else {
      // Region-of-interest: only the plane-index interval the segment
      // can reach.  Coordinate range swept on this axis over the band:
      const double c1 = kMin * tAxis;
      const double c2 = kMax * tAxis;
      const double lo = std::max(std::min(c1, c2), grid.min[axis]);
      const double hi = std::min(std::max(c1, c2), grid.max[axis]);
      if (lo > hi) {
        continue; // segment never enters this axis' extent
      }
      const double w = grid.inverseWidth[axis];
      auto first = static_cast<std::ptrdiff_t>(
          std::ceil((lo - grid.min[axis]) * w - 1e-9));
      auto last = static_cast<std::ptrdiff_t>(
          std::floor((hi - grid.min[axis]) * w + 1e-9));
      first = std::max<std::ptrdiff_t>(first, 0);
      last = std::min<std::ptrdiff_t>(last,
                                      static_cast<std::ptrdiff_t>(grid.n[axis]));
      for (std::ptrdiff_t plane = first; plane <= last; ++plane) {
        tryPlane(grid, t, kMin, kMax, axis, static_cast<std::size_t>(plane),
                 inverseT, out, count);
      }
    }
  }

  // Segment endpoints inside the box bound the first/last partial bins.
  // An endpoint landing bitwise on a plane crossing is already in the
  // list; emitting it again would only bound a zero-width segment.
  for (const double kEnd : {kMin, kMax}) {
    const V3 p = t * kEnd;
    if (insideBoxClosed(grid, p) && !duplicatesLowerAxis(grid, t, 3, kEnd)) {
      out[count++] = Intersection{p.x, p.y, p.z, kEnd};
    }
  }
  return count;
}

} // namespace vates
