#include "vates/kernels/transforms.hpp"

#include "vates/units/units.hpp"

namespace vates {

std::vector<M33> binMdTransforms(const Projection& projection,
                                 const OrientedLattice& lattice,
                                 std::span<const M33> symmetryOps) {
  const double inv2Pi = 1.0 / units::kTwoPi;
  std::vector<M33> transforms;
  transforms.reserve(symmetryOps.size());
  for (const M33& op : symmetryOps) {
    transforms.push_back((projection.Winv() * op * lattice.UBinv()) * inv2Pi);
  }
  return transforms;
}

std::vector<M33> mdNormTransforms(const Projection& projection,
                                  const OrientedLattice& lattice,
                                  std::span<const M33> symmetryOps,
                                  const M33& goniometerR) {
  const double inv2Pi = 1.0 / units::kTwoPi;
  const M33 rInverse = goniometerR.transposed();
  std::vector<M33> transforms;
  transforms.reserve(symmetryOps.size());
  for (const M33& op : symmetryOps) {
    transforms.push_back(
        (projection.Winv() * op * lattice.UBinv() * rInverse) * inv2Pi);
  }
  return transforms;
}

} // namespace vates
