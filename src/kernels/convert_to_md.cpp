#include "vates/kernels/convert_to_md.hpp"

#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <cmath>
#include <limits>

namespace vates {

EventTable convertToMD(const Executor& executor, const Instrument& instrument,
                       const DetectorMask* mask, const RunInfo& run,
                       const RawEventList& raw, const ConvertOptions& options) {
  if (mask != nullptr) {
    VATES_REQUIRE(mask->size() == instrument.nDetectors(),
                  "mask size does not match the instrument");
  }
  const std::size_t n = raw.size();
  EventTable table(n);

  // Conversion is part of the host-side load stage; a device executor
  // would imply staging host tables it immediately throws away.
  const Executor hostExecutor =
      executor.backend() == Backend::DeviceSim
          ? Executor(Backend::ThreadPool, executor.pool(), executor.device())
          : executor;

  const std::uint32_t* detectors = raw.detectorIds().data();
  const double* tofs = raw.tofs().data();
  const double* weights = raw.weights().data();
  const V3* qDirections = instrument.qLabDirections().data();
  const double* flightPaths = instrument.totalFlightPaths().data();
  const double* twoThetas = instrument.twoThetas().data();
  const std::uint8_t* maskFlags = mask != nullptr ? mask->flags().data() : nullptr;

  double* outSignal = table.column(EventTable::Signal).data();
  double* outErrorSq = table.column(EventTable::ErrorSq).data();
  double* outRun = table.column(EventTable::RunIndex).data();
  double* outDetector = table.column(EventTable::DetectorId).data();
  double* outGoniometer = table.column(EventTable::GoniometerIndex).data();
  double* outQx = table.column(EventTable::Qx).data();
  double* outQy = table.column(EventTable::Qy).data();
  double* outQz = table.column(EventTable::Qz).data();

  const M33 rInverse = run.goniometerR.transposed();
  const auto runIndexValue = static_cast<double>(run.runIndex);
  const double kMin = run.kMin;
  const double kMax = run.kMax;
  const bool lorentz = options.lorentzCorrection;
  const bool filterBand = options.filterMomentumBand;
  constexpr double kRejected = std::numeric_limits<double>::infinity();

  hostExecutor.parallelFor(
      n,
      [=](std::size_t i) {
        const std::uint32_t detector = detectors[i];
        outRun[i] = runIndexValue;
        outGoniometer[i] = runIndexValue;
        outDetector[i] = static_cast<double>(detector);

        const bool masked = maskFlags != nullptr && maskFlags[detector] != 0;
        const double lambda =
            units::kHoverM * (tofs[i] * 1e-6) / flightPaths[detector];
        const double k = units::kTwoPi / lambda;
        const bool outOfBand = filterBand && (k < kMin || k > kMax);

        if (masked || outOfBand || !(lambda > 0.0)) {
          outSignal[i] = 0.0;
          outErrorSq[i] = 0.0;
          outQx[i] = kRejected;
          outQy[i] = kRejected;
          outQz[i] = kRejected;
          return;
        }

        double weight = weights[i];
        if (lorentz) {
          const double sinHalf = std::sin(0.5 * twoThetas[detector]);
          const double lambda2 = lambda * lambda;
          weight *= (sinHalf * sinHalf) / (lambda2 * lambda2);
        }

        const V3 qLab = qDirections[detector] * k;
        const V3 qSample = rInverse * qLab;
        outSignal[i] = weight;
        outErrorSq[i] = weight;
        outQx[i] = qSample.x;
        outQy[i] = qSample.y;
        outQz[i] = qSample.z;
      },
      "convert_to_md");

  return table;
}

std::size_t compactEvents(EventTable& events) {
  const std::size_t n = events.size();
  EventTable compacted;
  compacted.reserve(n);
  std::size_t removed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const V3 q = events.qSample(i);
    if (std::isinf(q.x)) {
      ++removed;
      continue;
    }
    compacted.append(events.signal(i), events.errorSq(i),
                     static_cast<double>(events.runIndex(i)),
                     static_cast<double>(events.detectorId(i)),
                     static_cast<double>(events.runIndex(i)), q);
  }
  events = std::move(compacted);
  return removed;
}

} // namespace vates
