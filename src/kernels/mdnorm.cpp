#include "vates/kernels/mdnorm.hpp"

#include "vates/kernels/comb_sort.hpp"
#include "vates/kernels/trajectory_walk.hpp"
#include "vates/parallel/atomics.hpp"
#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <limits>
#include <vector>

namespace vates {

namespace {

/// Per-thread scratch, grown once and reused across work items and runs
/// (Per.14/Per.15: no allocation on the critical branch after warm-up).
/// thread_local covers every backend: OpenMP threads, the pool workers,
/// and the simulated device's block executors.
struct Scratch {
  std::vector<Intersection> intersections;
  std::vector<double> keys;

  /// Keep at least \p capacity entries available.  The buffers persist
  /// across kernels and grids (thread_local), so when a much smaller
  /// grid follows a huge one the oversized allocation is released
  /// instead of pinning the high-water footprint forever.  The 4×
  /// hysteresis and the absolute floor keep alternating grids from
  /// reallocating every launch; within one kernel the capacity is
  /// constant, so either branch is taken at most once per launch.
  void ensure(std::size_t capacity) {
    constexpr std::size_t kShrinkFloor = 4096;
    if (intersections.size() < capacity) {
      intersections.resize(capacity);
      keys.resize(capacity);
    } else if (intersections.size() > capacity * 4 &&
               intersections.size() > kShrinkFloor) {
      intersections.resize(capacity);
      intersections.shrink_to_fit();
      keys.resize(capacity);
      keys.shrink_to_fit();
    }
  }
};

Scratch& scratch() {
  thread_local Scratch instance;
  return instance;
}

} // namespace

const char* traversalName(Traversal mode) noexcept {
  switch (mode) {
  case Traversal::Legacy:
    return "legacy";
  case Traversal::SortedKeys:
    return "sorted-keys";
  case Traversal::Dda:
    return "dda";
  }
  return "sorted-keys";
}

Traversal parseTraversal(const std::string& name) {
  const std::string lower = toLower(trim(name));
  if (lower == "legacy" || lower == "structs" || lower == "mantid") {
    return Traversal::Legacy;
  }
  if (lower == "sorted-keys" || lower == "sorted_keys" || lower == "keys" ||
      lower == "sorted") {
    return Traversal::SortedKeys;
  }
  if (lower == "dda" || lower == "walk" || lower == "grid-walk") {
    return Traversal::Dda;
  }
  throw InvalidArgument("unknown traversal '" + name +
                        "' (available: legacy, sorted-keys, dda)");
}

void runMDNorm(const Executor& executor, const MDNormInputs& inputs,
               const GridView& normalization, const MDNormOptions& options) {
  VATES_REQUIRE(normalization.data != nullptr, "normalization view has no data");
  VATES_REQUIRE(inputs.qLabDirections.size() == inputs.solidAngles.size(),
                "detector arrays disagree in length");
  VATES_REQUIRE(inputs.kMax > inputs.kMin && inputs.kMin > 0.0,
                "need 0 < kMin < kMax");

  const std::size_t nOps = inputs.transforms.size();
  const std::size_t nDetectors = inputs.qLabDirections.size();
  VATES_REQUIRE(inputs.trajectories.empty() ||
                    inputs.trajectories.size() == nOps * nDetectors,
                "trajectory table length must be nOps × nDetectors");
  const std::size_t capacity = maxIntersections(normalization);

  const M33* transforms = inputs.transforms.data();
  const V3* qDirections = inputs.qLabDirections.data();
  const V3* trajectories =
      inputs.trajectories.empty() ? nullptr : inputs.trajectories.data();
  const double* solidAngles = inputs.solidAngles.data();
  const FluxTableView flux = inputs.flux;
  const double charge = inputs.protonCharge;
  const double kMin = inputs.kMin;
  const double kMax = inputs.kMax;
  const GridView grid = normalization;
  const PlaneSearch search = options.search;
  const Traversal traversal = options.traversal;
  // Compacted launch: iterate the active-detector list when provided,
  // the full detector range (with the per-item mask branch) otherwise.
  const std::uint32_t* active =
      inputs.activeDetectors.empty() ? nullptr : inputs.activeDetectors.data();
  const std::size_t nItems =
      active != nullptr ? inputs.activeDetectors.size() : nDetectors;
  const std::uint8_t* mask = active != nullptr ? nullptr : inputs.detectorMask;

  GridAccumulator accumulator(normalization, executor, options.accumulate);
  const AccumulatorRef sink = accumulator.ref();

  executor.parallelFor2DIndexed(
      nOps, nItems,
      [=](std::size_t op, std::size_t item, unsigned worker) {
        const std::size_t detector = active != nullptr ? active[item] : item;
        if (mask != nullptr && mask[detector] != 0) {
          return;
        }

        const V3 t = trajectories != nullptr
                         ? trajectories[op * nDetectors + detector]
                         : transforms[op] * qDirections[detector];
        const double weightFactor = solidAngles[detector] * charge;

        if (traversal == Traversal::Dda) {
          // Streaming walk: segments arrive already in momentum order
          // with their bin index — nothing to buffer, sort, or locate,
          // so the thread-local scratch is never touched.
          traverseTrajectory(grid, t, kMin, kMax,
                             [&](double k1, double k2, std::size_t bin) {
                               const double deposit =
                                   weightFactor * flux.bandIntegral(k1, k2);
                               if (deposit > 0.0) {
                                 sink.add(worker, bin, deposit);
                               }
                             });
          return;
        }

        Scratch& s = scratch();
        s.ensure(capacity);
        Intersection* buffer = s.intersections.data();

        const std::size_t count =
            calculateIntersections(grid, t, kMin, kMax, search, buffer);
        if (count < 2) {
          return;
        }

        if (traversal == Traversal::SortedKeys) {
          // Proxy-style: extract the momentum keys and sort only them;
          // positions are recomputed from the ray parameterization.
          double* keys = s.keys.data();
          for (std::size_t i = 0; i < count; ++i) {
            keys[i] = buffer[i].k;
          }
          combSortKeys(keys, nullptr, count);
          for (std::size_t i = 0; i + 1 < count; ++i) {
            const double k1 = keys[i];
            const double k2 = keys[i + 1];
            if (k2 <= k1) {
              continue;
            }
            const double deposit = weightFactor * flux.bandIntegral(k1, k2);
            if (deposit <= 0.0) {
              continue;
            }
            const V3 mid = t * (0.5 * (k1 + k2));
            const std::size_t bin = grid.locate(mid);
            if (bin < grid.size()) {
              sink.add(worker, bin, deposit);
            }
          }
        } else {
          // Mantid-style ablation: sort whole structs, use stored
          // positions for the midpoint (numerically identical since the
          // ray passes through the origin).
          combSortStructs(buffer, count,
                          [](const Intersection& p) { return p.k; });
          for (std::size_t i = 0; i + 1 < count; ++i) {
            const Intersection& a = buffer[i];
            const Intersection& b = buffer[i + 1];
            if (b.k <= a.k) {
              continue;
            }
            const double deposit = weightFactor * flux.bandIntegral(a.k, b.k);
            if (deposit <= 0.0) {
              continue;
            }
            const V3 mid{0.5 * (a.x + b.x), 0.5 * (a.y + b.y),
                         0.5 * (a.z + b.z)};
            const std::size_t bin = grid.locate(mid);
            if (bin < grid.size()) {
              sink.add(worker, bin, deposit);
            }
          }
        }
      },
      "mdnorm");

  accumulator.commit();
}

std::size_t estimateMaxIntersections(const Executor& executor,
                                     const MDNormInputs& inputs,
                                     const GridView& grid,
                                     PlaneSearch search) {
  const std::size_t nOps = inputs.transforms.size();
  const std::size_t nDetectors = inputs.qLabDirections.size();
  VATES_REQUIRE(inputs.trajectories.empty() ||
                    inputs.trajectories.size() == nOps * nDetectors,
                "trajectory table length must be nOps × nDetectors");
  const std::size_t capacity = maxIntersections(grid);

  const M33* transforms = inputs.transforms.data();
  const V3* qDirections = inputs.qLabDirections.data();
  const V3* trajectories =
      inputs.trajectories.empty() ? nullptr : inputs.trajectories.data();
  const double kMin = inputs.kMin;
  const double kMax = inputs.kMax;
  // Match runMDNorm's launch shape: only active detectors contribute to
  // the bound when a compacted list is provided.
  const std::uint32_t* active =
      inputs.activeDetectors.empty() ? nullptr : inputs.activeDetectors.data();
  const std::size_t nItems =
      active != nullptr ? inputs.activeDetectors.size() : nDetectors;

  // The flattened (op × detector) index space must fit std::size_t, or
  // the reduce below silently iterates a wrapped-around count.
  VATES_REQUIRE(nItems == 0 ||
                    nOps <= std::numeric_limits<std::size_t>::max() / nItems,
                "op × detector index space overflows std::size_t");

  return executor.parallelReduce(
      nOps * nItems, std::size_t{0},
      [=](std::size_t flat) {
        Scratch& s = scratch();
        s.ensure(capacity);
        const std::size_t detector =
            active != nullptr ? active[flat % nItems] : flat % nItems;
        const V3 t = trajectories != nullptr
                         ? trajectories[(flat / nItems) * nDetectors + detector]
                         : transforms[flat / nItems] * qDirections[detector];
        return calculateIntersections(grid, t, kMin, kMax, search,
                                      s.intersections.data());
      },
      [](std::size_t a, std::size_t b) { return a > b ? a : b; },
      "mdnorm_max_intersections");
}

void computeTrajectories(const Executor& executor,
                         std::span<const M33> transforms,
                         std::span<const V3> qDirections, V3* out) {
  const std::size_t nOps = transforms.size();
  const std::size_t nDetectors = qDirections.size();
  VATES_REQUIRE(nDetectors == 0 ||
                    nOps <= std::numeric_limits<std::size_t>::max() / nDetectors,
                "op × detector index space overflows std::size_t");
  const M33* transformData = transforms.data();
  const V3* directionData = qDirections.data();
  executor.parallelFor(
      nOps * nDetectors,
      [=](std::size_t flat) {
        out[flat] =
            transformData[flat / nDetectors] * directionData[flat % nDetectors];
      },
      "mdnorm_trajectories");
}

std::size_t mdnormScratchCapacityForTesting() {
  return scratch().intersections.size();
}

} // namespace vates
