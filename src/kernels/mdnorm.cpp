#include "vates/kernels/mdnorm.hpp"

#include "vates/kernels/comb_sort.hpp"
#include "vates/kernels/simd_batch.hpp"
#include "vates/kernels/trajectory_walk.hpp"
#include "vates/parallel/atomics.hpp"
#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace vates {

namespace {

/// Per-thread scratch, grown once and reused across work items and runs
/// (Per.14/Per.15: no allocation on the critical branch after warm-up).
/// thread_local covers every backend: OpenMP threads, the pool workers,
/// and the simulated device's block executors.
struct Scratch {
  std::vector<Intersection> intersections;
  std::vector<double> keys;

  /// Keep at least \p capacity entries available.  The buffers persist
  /// across kernels and grids (thread_local), so when a much smaller
  /// grid follows a huge one the oversized allocation is released
  /// instead of pinning the high-water footprint forever.  The 4×
  /// hysteresis and the absolute floor keep alternating grids from
  /// reallocating every launch; within one kernel the capacity is
  /// constant, so either branch is taken at most once per launch.
  void ensure(std::size_t capacity) {
    constexpr std::size_t kShrinkFloor = 4096;
    if (intersections.size() < capacity) {
      intersections.resize(capacity);
      keys.resize(capacity);
    } else if (intersections.size() > capacity * 4 &&
               intersections.size() > kShrinkFloor) {
      intersections.resize(capacity);
      intersections.shrink_to_fit();
      keys.resize(capacity);
      keys.shrink_to_fit();
    }
  }
};

Scratch& scratch() {
  thread_local Scratch instance;
  return instance;
}

} // namespace

const char* traversalName(Traversal mode) noexcept {
  switch (mode) {
  case Traversal::Legacy:
    return "legacy";
  case Traversal::SortedKeys:
    return "sorted-keys";
  case Traversal::Dda:
    return "dda";
  }
  return "sorted-keys";
}

Traversal parseTraversal(const std::string& name) {
  const std::string lower = toLower(trim(name));
  if (lower == "legacy" || lower == "structs" || lower == "mantid") {
    return Traversal::Legacy;
  }
  if (lower == "sorted-keys" || lower == "sorted_keys" || lower == "keys" ||
      lower == "sorted") {
    return Traversal::SortedKeys;
  }
  if (lower == "dda" || lower == "walk" || lower == "grid-walk") {
    return Traversal::Dda;
  }
  throw InvalidArgument("unknown traversal '" + name +
                        "' (available: legacy, sorted-keys, dda)");
}

void runMDNorm(const Executor& executor, const MDNormInputs& inputs,
               const GridView& normalization, const MDNormOptions& options) {
  VATES_REQUIRE(normalization.data != nullptr, "normalization view has no data");
  VATES_REQUIRE(inputs.qLabDirections.size() == inputs.solidAngles.size(),
                "detector arrays disagree in length");
  VATES_REQUIRE(inputs.kMax > inputs.kMin && inputs.kMin > 0.0,
                "need 0 < kMin < kMax");

  const std::size_t nOps = inputs.transforms.size();
  const std::size_t nDetectors = inputs.qLabDirections.size();
  VATES_REQUIRE(inputs.trajectories.empty() ||
                    inputs.trajectories.size() == nOps * nDetectors,
                "trajectory table length must be nOps × nDetectors");
  const std::size_t capacity = maxIntersections(normalization);

  const M33* transforms = inputs.transforms.data();
  const V3* qDirections = inputs.qLabDirections.data();
  const V3* trajectories =
      inputs.trajectories.empty() ? nullptr : inputs.trajectories.data();
  const double* solidAngles = inputs.solidAngles.data();
  const FluxTableView flux = inputs.flux;
  const double charge = inputs.protonCharge;
  const double kMin = inputs.kMin;
  const double kMax = inputs.kMax;
  const GridView grid = normalization;
  const PlaneSearch search = options.search;
  const Traversal traversal = options.traversal;
  const bool useVector = simdUseVector(options.simd, executor.backend());
  // Compacted launch: iterate the active-detector list when provided,
  // the full detector range (with the per-item mask branch) otherwise.
  const std::uint32_t* active =
      inputs.activeDetectors.empty() ? nullptr : inputs.activeDetectors.data();
  const std::size_t nItems =
      active != nullptr ? inputs.activeDetectors.size() : nDetectors;
  const std::uint8_t* mask = active != nullptr ? nullptr : inputs.detectorMask;

  GridAccumulator accumulator(normalization, executor, options.accumulate);
  const AccumulatorRef sink = accumulator.ref();

  if (traversal == Traversal::Dda && useVector) {
    // ---- SoA / SIMD Dda path --------------------------------------------
    // Four vector axes, none of which move a single deposit relative
    // to the scalar Dda path on Backend::Serial (everything below is
    // bitwise-pinned by tests/test_simd.cpp and the oracle sweep):
    //  1. Work items batch simd::kWidth detectors; their trajectories
    //     come from one vectorized M·q (the exact left-associated
    //     expression M33::operator*(V3) evaluates, per lane, never
    //     fused) over per-launch SoA direction columns.
    //  2. A BandClipBatch evaluates the hull clip across the lanes —
    //     on thin-slab grids most groups die right there, before any
    //     per-lane state is even written to the stack.
    //  3. Surviving lanes walk in lane (= detector) order with
    //     per-launch plane-edge tables hoisting planeEdge's divide off
    //     the step chain.  The walk itself stays scalar: it is a serial
    //     recurrence, and both an in-register 4-lane variant and a
    //     lockstep walk across independent trajectories measured
    //     *slower* than the speculated branchy loop (the lockstep's
    //     per-iteration mask scans mispredict chaotically where the
    //     per-trajectory branch pattern is learnable).
    //  4. Each walk fills a tile of crossings (consecutive DDA
    //     segments share endpoints), the flux interpolant runs a
    //     vector at a time over the crossing column — one Φ per
    //     crossing instead of bandIntegral's two per segment — and
    //     surviving deposits drain through a cache-blocked
    //     DepositBlock.  Each deposit is weightFactor · (Φ[s+1] −
    //     Φ[s]): the exact ops of flux.bandIntegral on interpolants
    //     bitwise equal to the scalar calls, in momentum order.
    std::vector<double> edgeStorage(grid.n[0] + grid.n[1] + grid.n[2] + 3);
    PlaneEdges planeEdges;
    {
      double* cursor = edgeStorage.data();
      for (std::size_t axis = 0; axis < 3; ++axis) {
        planeEdges.e[axis] = cursor;
        for (std::size_t p = 0; p <= grid.n[axis]; ++p) {
          *cursor++ = grid.planeEdge(axis, p);
        }
      }
    }
    const BandClipBatch clip(grid, kMin, kMax);

    constexpr std::size_t kLanes = simd::kWidth;
    const std::size_t nGroups = (nItems + kLanes - 1) / kLanes;
    const std::size_t padded = nGroups * kLanes;

    // Launch-time SoA: per-item direction columns (op-invariant — the
    // per-op transform is applied vectorized per group) and a
    // per-group live-lane mask folding the detector mask and the tail.
    // One uninitialized allocation, one fill pass; padding lanes get
    // direction (1,1,1): finite, clip-safe, and excluded by the mask.
    const auto columnStore = std::make_unique_for_overwrite<double[]>(3 * padded);
    const auto groupLive = std::make_unique_for_overwrite<std::uint8_t[]>(nGroups);
    double* const qxCol = columnStore.get();
    double* const qyCol = columnStore.get() + padded;
    double* const qzCol = columnStore.get() + 2 * padded;
    for (std::size_t group = 0; group < nGroups; ++group) {
      std::uint8_t live = 0;
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const std::size_t item = group * kLanes + lane;
        const std::size_t detector =
            item < nItems ? (active != nullptr ? active[item] : item) : 0;
        const bool on =
            item < nItems && (mask == nullptr || mask[detector] == 0);
        const V3 q = on ? qDirections[detector] : V3{1.0, 1.0, 1.0};
        qxCol[item] = q.x;
        qyCol[item] = q.y;
        qzCol[item] = q.z;
        live |= static_cast<std::uint8_t>(static_cast<unsigned>(on) << lane);
      }
      groupLive[group] = live;
    }
    const double* qx = qxCol;
    const double* qy = qyCol;
    const double* qz = qzCol;
    const std::uint8_t* liveMasks = groupLive.get();

    executor.parallelFor2DIndexed(
        nOps, nGroups,
        [=](std::size_t op, std::size_t group, unsigned worker) {
          const unsigned live = liveMasks[group];
          if (live == 0u) {
            return;
          }
          const std::size_t itemBase = group * kLanes;

          simd::f64v txV, tyV, tzV;
          if (trajectories != nullptr) {
            alignas(32) double lt[3][kLanes];
            for (std::size_t lane = 0; lane < kLanes; ++lane) {
              if ((live & (1u << lane)) == 0u) {
                lt[0][lane] = 1.0;
                lt[1][lane] = 1.0;
                lt[2][lane] = 1.0;
                continue;
              }
              const std::size_t item = itemBase + lane;
              const std::size_t detector =
                  active != nullptr ? active[item] : item;
              const V3 t = trajectories[op * nDetectors + detector];
              lt[0][lane] = t.x;
              lt[1][lane] = t.y;
              lt[2][lane] = t.z;
            }
            txV = simd::f64v::load(lt[0]);
            tyV = simd::f64v::load(lt[1]);
            tzV = simd::f64v::load(lt[2]);
          } else {
            // t = M·q across the lanes: (m0·x + m1·y) + m2·z per row,
            // the left-associated expression M33::operator*(V3)
            // evaluates — one IEEE op per lane per node, no fusion.
            const double* m = transforms[op].m.data();
            const simd::f64v qxV = simd::f64v::load(qx + itemBase);
            const simd::f64v qyV = simd::f64v::load(qy + itemBase);
            const simd::f64v qzV = simd::f64v::load(qz + itemBase);
            txV = simd::f64v::broadcast(m[0]) * qxV +
                  simd::f64v::broadcast(m[1]) * qyV +
                  simd::f64v::broadcast(m[2]) * qzV;
            tyV = simd::f64v::broadcast(m[3]) * qxV +
                  simd::f64v::broadcast(m[4]) * qyV +
                  simd::f64v::broadcast(m[5]) * qzV;
            tzV = simd::f64v::broadcast(m[6]) * qxV +
                  simd::f64v::broadcast(m[7]) * qyV +
                  simd::f64v::broadcast(m[8]) * qzV;
          }

          const unsigned walkers = live & ~clip.rejected(txV, tyV, tzV);
          if (walkers == 0u) {
            return; // whole group clipped away — the common thin-slab exit
          }

          alignas(32) double tx[kLanes];
          alignas(32) double ty[kLanes];
          alignas(32) double tz[kLanes];
          txV.store(tx);
          tyV.store(ty);
          tzV.store(tz);

          // Walk surviving lanes in lane order — detector order,
          // exactly the sequence the scalar path deposits in.
          for (std::size_t lane = 0; lane < kLanes; ++lane) {
            if ((walkers & (1u << lane)) == 0u) {
              continue;
            }
            const std::size_t item = itemBase + lane;
            const std::size_t detector =
                active != nullptr ? active[item] : item;
            const double weightFactor = solidAngles[detector] * charge;
            const V3 t{tx[lane], ty[lane], tz[lane]};
            constexpr std::size_t kSegmentTile = 128;
            double kCol[kSegmentTile + 1];
            double phiCol[kSegmentTile + 1];
            std::size_t binCol[kSegmentTile];
            std::size_t nSegments = 0;
            DepositBlock staged;
            const auto drain = [&] {
              simd::fluxIntegratedBatch(flux, kCol, phiCol, nSegments + 1);
              for (std::size_t s = 0; s < nSegments; ++s) {
                const double deposit =
                    weightFactor * (phiCol[s + 1] - phiCol[s]);
                if (deposit > 0.0) {
                  if (staged.full()) {
                    staged.flush(sink, worker);
                  }
                  staged.push(binCol[s], deposit);
                }
              }
              nSegments = 0;
            };
            traverseTrajectorySimd(
                grid, t, kMin, kMax,
                [&](double k1, double k2, std::size_t bin) {
                  // The crossing chain breaks only across segments the
                  // walk dropped (parallel-axis midpoint outside the
                  // grid): crossings are strictly increasing, so a
                  // dropped segment's far end never equals the last
                  // stored crossing bitwise.  Drain so Φ values never
                  // pair across the gap.
                  if (nSegments != 0 &&
                      std::bit_cast<std::uint64_t>(kCol[nSegments]) !=
                          std::bit_cast<std::uint64_t>(k1)) {
                    drain();
                  }
                  if (nSegments == 0) {
                    kCol[0] = k1;
                  }
                  kCol[nSegments + 1] = k2;
                  binCol[nSegments] = bin;
                  if (++nSegments == kSegmentTile) {
                    drain();
                  }
                },
                planeEdges);
            if (nSegments != 0) {
              drain();
            }
            if (staged.count != 0) {
              staged.flush(sink, worker);
            }
          }
        },
        "mdnorm_simd");

    accumulator.commit();
    return;
  }

  executor.parallelFor2DIndexed(
      nOps, nItems,
      [=](std::size_t op, std::size_t item, unsigned worker) {
        const std::size_t detector = active != nullptr ? active[item] : item;
        if (mask != nullptr && mask[detector] != 0) {
          return;
        }

        const V3 t = trajectories != nullptr
                         ? trajectories[op * nDetectors + detector]
                         : transforms[op] * qDirections[detector];
        const double weightFactor = solidAngles[detector] * charge;

        if (traversal == Traversal::Dda) {
          // Streaming walk: segments arrive already in momentum order
          // with their bin index — nothing to buffer, sort, or locate,
          // so the thread-local scratch is never touched.
          traverseTrajectory(grid, t, kMin, kMax,
                             [&](double k1, double k2, std::size_t bin) {
                               const double deposit =
                                   weightFactor * flux.bandIntegral(k1, k2);
                               if (deposit > 0.0) {
                                 sink.add(worker, bin, deposit);
                               }
                             });
          return;
        }

        Scratch& s = scratch();
        s.ensure(capacity);
        Intersection* buffer = s.intersections.data();

        const std::size_t count =
            calculateIntersections(grid, t, kMin, kMax, search, buffer);
        if (count < 2) {
          return;
        }

        if (traversal == Traversal::SortedKeys) {
          // Proxy-style: extract the momentum keys and sort only them;
          // positions are recomputed from the ray parameterization.
          double* keys = s.keys.data();
          for (std::size_t i = 0; i < count; ++i) {
            keys[i] = buffer[i].k;
          }
          combSortKeys(keys, nullptr, count);
          for (std::size_t i = 0; i + 1 < count; ++i) {
            const double k1 = keys[i];
            const double k2 = keys[i + 1];
            if (k2 <= k1) {
              continue;
            }
            const double deposit = weightFactor * flux.bandIntegral(k1, k2);
            if (deposit <= 0.0) {
              continue;
            }
            const V3 mid = t * (0.5 * (k1 + k2));
            const std::size_t bin = grid.locate(mid);
            if (bin < grid.size()) {
              sink.add(worker, bin, deposit);
            }
          }
        } else {
          // Mantid-style ablation: sort whole structs, use stored
          // positions for the midpoint (numerically identical since the
          // ray passes through the origin).
          combSortStructs(buffer, count,
                          [](const Intersection& p) { return p.k; });
          for (std::size_t i = 0; i + 1 < count; ++i) {
            const Intersection& a = buffer[i];
            const Intersection& b = buffer[i + 1];
            if (b.k <= a.k) {
              continue;
            }
            const double deposit = weightFactor * flux.bandIntegral(a.k, b.k);
            if (deposit <= 0.0) {
              continue;
            }
            const V3 mid{0.5 * (a.x + b.x), 0.5 * (a.y + b.y),
                         0.5 * (a.z + b.z)};
            const std::size_t bin = grid.locate(mid);
            if (bin < grid.size()) {
              sink.add(worker, bin, deposit);
            }
          }
        }
      },
      "mdnorm");

  accumulator.commit();
}

std::size_t estimateMaxIntersections(const Executor& executor,
                                     const MDNormInputs& inputs,
                                     const GridView& grid,
                                     PlaneSearch search) {
  const std::size_t nOps = inputs.transforms.size();
  const std::size_t nDetectors = inputs.qLabDirections.size();
  VATES_REQUIRE(inputs.trajectories.empty() ||
                    inputs.trajectories.size() == nOps * nDetectors,
                "trajectory table length must be nOps × nDetectors");
  const std::size_t capacity = maxIntersections(grid);

  const M33* transforms = inputs.transforms.data();
  const V3* qDirections = inputs.qLabDirections.data();
  const V3* trajectories =
      inputs.trajectories.empty() ? nullptr : inputs.trajectories.data();
  const double kMin = inputs.kMin;
  const double kMax = inputs.kMax;
  // Match runMDNorm's launch shape: only active detectors contribute to
  // the bound when a compacted list is provided.
  const std::uint32_t* active =
      inputs.activeDetectors.empty() ? nullptr : inputs.activeDetectors.data();
  const std::size_t nItems =
      active != nullptr ? inputs.activeDetectors.size() : nDetectors;

  // The flattened (op × detector) index space must fit std::size_t, or
  // the reduce below silently iterates a wrapped-around count.
  VATES_REQUIRE(nItems == 0 ||
                    nOps <= std::numeric_limits<std::size_t>::max() / nItems,
                "op × detector index space overflows std::size_t");

  return executor.parallelReduce(
      nOps * nItems, std::size_t{0},
      [=](std::size_t flat) {
        Scratch& s = scratch();
        s.ensure(capacity);
        const std::size_t detector =
            active != nullptr ? active[flat % nItems] : flat % nItems;
        const V3 t = trajectories != nullptr
                         ? trajectories[(flat / nItems) * nDetectors + detector]
                         : transforms[flat / nItems] * qDirections[detector];
        return calculateIntersections(grid, t, kMin, kMax, search,
                                      s.intersections.data());
      },
      [](std::size_t a, std::size_t b) { return a > b ? a : b; },
      "mdnorm_max_intersections");
}

void computeTrajectories(const Executor& executor,
                         std::span<const M33> transforms,
                         std::span<const V3> qDirections, V3* out) {
  const std::size_t nOps = transforms.size();
  const std::size_t nDetectors = qDirections.size();
  VATES_REQUIRE(nDetectors == 0 ||
                    nOps <= std::numeric_limits<std::size_t>::max() / nDetectors,
                "op × detector index space overflows std::size_t");
  const M33* transformData = transforms.data();
  const V3* directionData = qDirections.data();
  executor.parallelFor(
      nOps * nDetectors,
      [=](std::size_t flat) {
        out[flat] =
            transformData[flat / nDetectors] * directionData[flat % nDetectors];
      },
      "mdnorm_trajectories");
}

std::size_t mdnormScratchCapacityForTesting() {
  return scratch().intersections.size();
}

} // namespace vates
