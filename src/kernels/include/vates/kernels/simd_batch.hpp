#pragma once
/// \file simd_batch.hpp
/// SoA batch forms of the kernel inner loops, built on support/simd.hpp.
///
/// The DDA traversal (PR 3) removed MDNorm's algorithmic overhead, so
/// what remains in both kernels is straight-line arithmetic repeated
/// per segment / per event: the flux band-integral interpolation, and
/// BinMD's Q-transform + bin locate.  These helpers evaluate that
/// arithmetic a vector register at a time over structure-of-arrays
/// tiles, with two hard guarantees:
///
///  - **Lane equivalence.**  Each lane performs the identical IEEE
///    operation sequence as the scalar code it mirrors (documented op
///    by op at each site), so a vector lane's result is bitwise equal
///    to the scalar call on the same input.  tests/test_simd.cpp pins
///    this across random, boundary, and NaN inputs.
///  - **Order preservation.**  Batch results come back in input order;
///    callers deposit them in that order, so on Backend::Serial a
///    SIMD-path histogram is bitwise identical to the scalar path's.
///
/// Tails (counts not divisible by simd::kWidth) fall back to the scalar
/// expression — which by the first guarantee produces the same bits —
/// so callers never pad or over-read.

#include "vates/flux/flux_spectrum.hpp"
#include "vates/geometry/mat3.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/parallel/backend.hpp"
#include "vates/support/simd.hpp"

#include <cstddef>

namespace vates {

/// Resolve a SimdMode against an execution backend: should this kernel
/// launch take its vector batch path?  Auto picks vector on the CPU
/// backends whenever the build has wide lanes, and scalar on DeviceSim
/// (its simulated SIMT model already maps one work item per lane; a
/// real GPU backend vectorizes across the warp, not inside the item).
bool simdUseVector(SimdMode mode, Backend backend) noexcept;

namespace simd {

/// Evaluate phi[i] = flux.integrated(k[i]) for i in [0, count), full
/// vectors through the lanes and the scalar interpolator for the tail.
/// Bitwise equal to calling flux.integrated per element.
///
/// The vector body mirrors FluxTableView::integrated op for op:
///   position = (k − kMin) · inverseStep        (sub, mul)
///   index    = trunc(position) clamped to n−2  (floor == trunc: pos ≥ 0)
///   fraction = position − index                (sub)
///   result   = c[idx] + fraction · (c[idx+1] − c[idx])  (sub, mul, add)
/// then the band clamps, applied high-edge first so the low edge wins
/// when both hold — the scalar branch order.  Out-of-band (and NaN)
/// lanes produce garbage interpolants from a *clamped-safe* index, and
/// the clamp selects overwrite them.
inline void fluxIntegratedBatch(const FluxTableView& flux, const double* k,
                                double* phi, std::size_t count) noexcept {
  std::size_t i = 0;
  if (flux.n >= 2) {
    const f64v kMinV = f64v::broadcast(flux.kMin);
    const f64v kMaxV = f64v::broadcast(flux.kMax);
    const f64v invStepV = f64v::broadcast(flux.inverseStep);
    const f64v zeroV = f64v::zero();
    const f64v maxIdxV =
        f64v::broadcast(static_cast<double>(flux.n - 2));
    const f64v lowV = f64v::broadcast(flux.cumulative[0]);
    const f64v highV = f64v::broadcast(flux.cumulative[flux.n - 1]);
    for (; i + kWidth <= count; i += kWidth) {
      const f64v kv = f64v::load(k + i);
      const f64v position = (kv - kMinV) * invStepV;
      // floor(position) == the scalar size_t truncation for the in-band
      // lanes (position ≥ 0 there).  Clamp order is NaN-safe: a NaN
      // index fails `>= 0` and becomes 0, a valid gather address.
      f64v indexV = floor(position);
      indexV = select(cmpGE(indexV, zeroV), indexV, zeroV);
      indexV = select(cmpLE(indexV, maxIdxV), indexV, maxIdxV);
      const f64v fraction = position - indexV;
      alignas(32) double indexLanes[kWidth];
      alignas(32) double c0[kWidth];
      alignas(32) double c1[kWidth];
      indexV.store(indexLanes);
      for (std::size_t lane = 0; lane < kWidth; ++lane) {
        const auto index = static_cast<std::size_t>(indexLanes[lane]);
        c0[lane] = flux.cumulative[index];
        c1[lane] = flux.cumulative[index + 1];
      }
      const f64v c0v = f64v::load(c0);
      const f64v c1v = f64v::load(c1);
      f64v result = c0v + fraction * (c1v - c0v);
      result = select(cmpGE(kv, kMaxV), highV, result);
      result = select(cmpLE(kv, kMinV), lowV, result);
      result.store(phi + i);
    }
  }
  for (; i < count; ++i) {
    phi[i] = flux.integrated(k[i]);
  }
}

/// One symmetry operation's Q-transform + grid locate, prepared once
/// per (op, event-block) and applied a vector at a time.  Broadcasting
/// the nine matrix entries and the six grid bounds hoists every
/// loop-invariant load out of the event loop — the SoA event columns
/// (qx/qy/qz) are then the only streamed inputs.
struct BinLocateBatch {
  f64v m[9];
  f64v gridMin[3];
  f64v gridMax[3];
  f64v invWidth[3];
  f64v axisLast[3]; ///< n[axis] − 1, the scalar overflow clamp
  f64v n1, n2;
  const GridView* grid;

  BinLocateBatch(const GridView& g, const M33& transform) noexcept
      : grid(&g) {
    for (std::size_t e = 0; e < 9; ++e) {
      m[e] = f64v::broadcast(transform.m[e]);
    }
    for (std::size_t axis = 0; axis < 3; ++axis) {
      gridMin[axis] = f64v::broadcast(g.min[axis]);
      gridMax[axis] = f64v::broadcast(g.max[axis]);
      invWidth[axis] = f64v::broadcast(g.inverseWidth[axis]);
      axisLast[axis] =
          f64v::broadcast(static_cast<double>(g.n[axis]) - 1.0);
    }
    n1 = f64v::broadcast(static_cast<double>(g.n[1]));
    n2 = f64v::broadcast(static_cast<double>(g.n[2]));
  }

  /// One axis of GridView::axisBin: in-range mask + clamped bin index.
  /// The mask mirrors the scalar negated-comparison NaN rejection
  /// (`value >= min && value < max`; NaN fails both compares), the
  /// index mirrors `(size_t)((value − min) · invWidth)` (trunc == floor
  /// for the in-range lanes, whose product is ≥ 0) with the `index ≥ n
  /// → n − 1` clamp.  Out-of-range lanes still get an in-[0, n−1] index
  /// (select pushes NaN/overflow to the clamp edge) so the flat-bin
  /// arithmetic below never overflows; their mask bit is clear.
  Mask axisBin(std::size_t axis, f64v value, f64v* index) const noexcept {
    const Mask inRange = maskAnd(cmpGE(value, gridMin[axis]),
                                 cmpLT(value, gridMax[axis]));
    f64v idx = floor((value - gridMin[axis]) * invWidth[axis]);
    idx = select(cmpGE(idx, f64v::zero()), idx, f64v::zero());
    idx = select(cmpLE(idx, axisLast[axis]), idx, axisLast[axis]);
    *index = idx;
    return inRange;
  }

  /// Locate kWidth events: bins[lane] = grid.locate(transform · q[lane])
  /// for every lane whose returned bit is set; lanes with a clear bit
  /// are outside the grid (scalar locate == grid.size()).  Bit l of the
  /// result is lane l (event order), so iterating set bits low-to-high
  /// preserves the scalar deposit order.  The flat bin is combined in
  /// the double domain — exact, since every product stays below 2^53
  /// for any grid that fits in memory.
  unsigned locate(const double* qx, const double* qy, const double* qz,
                  std::size_t* bins) const noexcept {
    const f64v x = f64v::load(qx);
    const f64v y = f64v::load(qy);
    const f64v z = f64v::load(qz);
    // M33::operator*(V3) evaluates (m0·x + m1·y) + m2·z left to right.
    const f64v px = m[0] * x + m[1] * y + m[2] * z;
    const f64v py = m[3] * x + m[4] * y + m[5] * z;
    const f64v pz = m[6] * x + m[7] * y + m[8] * z;
    f64v i, j, kIdx;
    Mask valid = axisBin(0, px, &i);
    valid = maskAnd(valid, axisBin(1, py, &j));
    valid = maskAnd(valid, axisBin(2, pz, &kIdx));
    const f64v flat = (i * n1 + j) * n2 + kIdx;
    alignas(32) double flatLanes[kWidth];
    flat.store(flatLanes);
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      bins[lane] = static_cast<std::size_t>(flatLanes[lane]);
    }
    return laneBits(valid);
  }
};

} // namespace simd
} // namespace vates
