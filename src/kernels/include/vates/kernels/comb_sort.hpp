#pragma once
/// \file comb_sort.hpp
/// Allocation-free in-kernel sorting.
///
/// MDNorm must sort each detector's trajectory intersections by
/// momentum *inside* the parallel kernel.  The paper settles on comb
/// sort after experimentation, because (a) GPU-side library sorts launch
/// their own kernels and can't be called from inside one, and (b)
/// standard-library sorts allocate scratch, which is disastrous in a
/// repeatedly-launched kernel (§III-B).  The same constraints are real
/// for our simulated device, so comb sort it is.
///
/// Two flavors implement the paper's data-structure ablation (§III-B,
/// "instead of sorting an array of structs, we sort an array of
/// indices using primitive types"):
///   - combSortKeys()    — sorts a primitive key array together with a
///                         parallel index array (the proxies' choice);
///   - combSortStructs() — sorts an array of arbitrary PODs by a key
///                         accessor (the Mantid-style baseline).

#include <cstddef>
#include <cstdint>
#include <utility>

namespace vates {

namespace detail {
/// The classic gap sequence: shrink by 1.3, never below 1.
inline std::size_t nextGap(std::size_t gap) noexcept {
  gap = (gap * 10) / 13;
  return gap < 1 ? 1 : gap;
}
} // namespace detail

/// Sort \p keys[0..n) ascending, applying every swap to \p indices too
/// (pass nullptr to sort keys alone).  No allocation, O(n²) worst case
/// but ~O(n log n) in practice — intersections lists are nearly sorted
/// already because planes are visited axis-by-axis.
inline void combSortKeys(double* keys, std::uint32_t* indices,
                         std::size_t n) noexcept {
  if (n < 2) {
    return;
  }
  std::size_t gap = n;
  bool swapped = true;
  while (gap > 1 || swapped) {
    gap = detail::nextGap(gap);
    swapped = false;
    for (std::size_t i = 0; i + gap < n; ++i) {
      const std::size_t j = i + gap;
      if (keys[j] < keys[i]) {
        std::swap(keys[i], keys[j]);
        if (indices != nullptr) {
          std::swap(indices[i], indices[j]);
        }
        swapped = true;
      }
    }
  }
}

/// Sort \p items[0..n) ascending by \p key(item).  POD-friendly, no
/// allocation; each swap moves the whole struct (the ablation baseline).
template <typename T, typename KeyFn>
inline void combSortStructs(T* items, std::size_t n, KeyFn&& key) noexcept {
  if (n < 2) {
    return;
  }
  std::size_t gap = n;
  bool swapped = true;
  while (gap > 1 || swapped) {
    gap = detail::nextGap(gap);
    swapped = false;
    for (std::size_t i = 0; i + gap < n; ++i) {
      const std::size_t j = i + gap;
      if (key(items[j]) < key(items[i])) {
        std::swap(items[i], items[j]);
        swapped = true;
      }
    }
  }
}

} // namespace vates
