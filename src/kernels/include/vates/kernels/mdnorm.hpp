#pragma once
/// \file mdnorm.hpp
/// The MDNorm kernel (paper Listing 1): accumulate the normalization
/// denominator of the differential scattering cross-section.
///
/// For every (symmetry operation × detector) — parallelized as one
/// flattened 2D iteration space, the collapse(2) of Listing 1 — the
/// kernel:
///   1. forms the trajectory direction t = N_op · qLabDirection(d),
///   2. computes the grid-plane intersections of p(k) = k·t over the
///      run's momentum band (intersections.hpp),
///   3. sorts them by momentum with allocation-free comb sort,
///   4. walks adjacent pairs, depositing
///         solidAngle(d) · protonCharge · (Φ(k₂) − Φ(k₁))
///      into the bin containing the segment midpoint (atomically).
///
/// Steps 2–4 are the Traversal::Legacy / Traversal::SortedKeys shape;
/// Traversal::Dda replaces them with a single streaming grid walk
/// (trajectory_walk.hpp) that emits the same segments in momentum order
/// directly, with no buffer, sort, or midpoint locate.
///
/// The normalization depends only on geometry and incident flux — not
/// on the events — which is why Algorithm 1 can accumulate it per run
/// independently of BinMD.

#include "vates/flux/flux_spectrum.hpp"
#include "vates/geometry/mat3.hpp"
#include "vates/geometry/vec3.hpp"
#include "vates/histogram/grid_accumulator.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/parallel/executor.hpp"
#include "vates/support/simd.hpp"

#include <cstdint>
#include <span>
#include <string>

namespace vates {

/// How MDNorm turns a trajectory into momentum segments.
///  - Legacy:     generate → sort whole Intersection structs → locate
///                each segment midpoint (Mantid-style, the ablation
///                baseline).
///  - SortedKeys: generate → sort primitive momentum keys → locate
///                (the paper proxies' §III-B improvement).
///  - Dda:        streaming grid traversal (trajectory_walk.hpp):
///                segments are emitted directly in momentum order with
///                incrementally-stepped bin indices — no intersection
///                buffer, no sort, no locate, and therefore no
///                per-thread scratch and no capacity pre-pass.
enum class Traversal : int { Legacy = 0, SortedKeys = 1, Dda = 2 };

/// "legacy", "sorted-keys", "dda".
const char* traversalName(Traversal mode) noexcept;

/// Parse a traversal name (case-insensitive, surrounding whitespace
/// ignored; accepts the names above plus the aliases "structs"/"mantid"
/// for Legacy, "keys"/"sorted" for SortedKeys, and "walk"/"grid-walk"
/// for Dda).  Throws InvalidArgument for unknown names.
Traversal parseTraversal(const std::string& name);

/// Algorithm variants, for the §III-B ablations.
struct MDNormOptions {
  /// Plane search: Roi (the proxies' improvement) or Linear (Mantid).
  /// Ignored by Traversal::Dda, which visits exactly the crossed planes
  /// by construction.
  PlaneSearch search = PlaneSearch::Roi;
  /// Segment generation strategy (see Traversal).  SortedKeys is the
  /// paper proxies' published configuration and stays the default; Dda
  /// is the sort-free streaming walk; Legacy is the Mantid-style
  /// baseline.
  Traversal traversal = Traversal::Dda;
  /// Histogram write path (atomic / privatized / tiled; Auto selects by
  /// grid size × concurrency vs. the replica budget).  The non-Atomic
  /// strategies require the normalization grid not be written by other
  /// executors concurrently with this call.
  AccumulateOptions accumulate;
  /// Vector-batch execution of the Dda hot path (SoA segment tiles →
  /// lane-parallel flux interpolation → cache-blocked deposits); see
  /// simd_batch.hpp.  Auto resolves per backend (simdUseVector); Off is
  /// the scalar path bit for bit; the vector path itself is bitwise
  /// identical on Backend::Serial and within the oracle tolerance
  /// elsewhere.  Ignored by the Legacy/SortedKeys ablation traversals,
  /// which exist to measure the historical scalar shapes.  The
  /// VATES_SIMD environment variable ("auto" / "off" / "on"), when set,
  /// overrides this at pipeline construction — same contract as
  /// VATES_TRAVERSAL.
  SimdMode simd = SimdMode::Auto;
};

/// Everything the kernel reads for one run.  All pointers/views must
/// stay valid for the duration of run(); when executing on
/// Backend::DeviceSim the caller stages them in device arrays and the
/// GridView's data pointer refers to the device-resident histogram.
struct MDNormInputs {
  std::span<const M33> transforms;      ///< one per symmetry op (incl. R⁻¹)
  std::span<const V3> qLabDirections;   ///< per detector
  std::span<const double> solidAngles;  ///< per detector
  FluxTableView flux;                   ///< integrated incident flux
  double protonCharge = 1.0;
  double kMin = 0.0;
  double kMax = 0.0;
  /// Optional per-detector mask (1 = skip), length == nDetectors;
  /// masked pixels contribute no normalization, matching the masked
  /// events dropped by ConvertToMD.  Ignored when `activeDetectors` is
  /// set (the compaction has already applied the mask).
  const std::uint8_t* detectorMask = nullptr;
  /// Optional compacted list of unmasked detector indices.  When
  /// non-empty the kernel launches over ops × activeDetectors.size()
  /// work items and maps each inner index through this table, so masked
  /// pixels cost nothing — no wasted work items, no per-item mask
  /// branch.  Entries must be < qLabDirections.size(); the pipeline
  /// builds the list once per reduction from the experiment's mask.  On
  /// Backend::DeviceSim it must be device-resident like any kernel
  /// argument.
  std::span<const std::uint32_t> activeDetectors;
  /// Optional precomputed trajectory directions t = transforms[op] ·
  /// qLabDirections[detector], flattened as [op × nDetectors +
  /// detector].  When non-empty (length must be nOps × nDetectors) the
  /// kernels skip the per-work-item matrix multiply — the fused
  /// intersection pass computes this table once per run and shares it
  /// between estimateMaxIntersections and runMDNorm instead of each
  /// redoing the full op × detector transform.
  std::span<const V3> trajectories;
};

/// Run MDNorm for one run, accumulating into \p normalization (which
/// must expose a writable data pointer).  Thread-safe accumulation via
/// atomics; safe to call for many runs into the same histogram.
void runMDNorm(const Executor& executor, const MDNormInputs& inputs,
               const GridView& normalization, const MDNormOptions& options = {});

/// The paper's pre-allocation estimator: the device workflow launches
/// one extra kernel per file to bound the intersection count before the
/// main kernel runs ("to avoid excessive allocation, an additional
/// kernel ... is called before the main MDNorm kernel").  Returns the
/// maximum intersections any (op × detector) work item produces.
std::size_t estimateMaxIntersections(const Executor& executor,
                                     const MDNormInputs& inputs,
                                     const GridView& grid,
                                     PlaneSearch search = PlaneSearch::Roi);

/// The fused intersection pass's first half: fill \p out (length nOps ×
/// nDetectors, flattened op-major) with t = transforms[op] ·
/// qDirections[detector].  On Backend::DeviceSim \p out must be
/// device-resident and the input spans device-staged, like any kernel
/// argument.  The products are bit-identical to what the kernels
/// compute inline, so consuming a precomputed table cannot change
/// results.
void computeTrajectories(const Executor& executor,
                         std::span<const M33> transforms,
                         std::span<const V3> qDirections, V3* out);

/// Capacity (in Intersection entries) of the calling thread's MDNorm
/// scratch buffer — test hook for the shrink-on-smaller-grid behavior.
/// Meaningful after running a kernel on Backend::Serial (which executes
/// on the calling thread).
std::size_t mdnormScratchCapacityForTesting();

} // namespace vates
