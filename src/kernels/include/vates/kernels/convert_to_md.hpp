#pragma once
/// \file convert_to_md.hpp
/// ConvertToMD: raw (detector, TOF) events → sample-frame Q events.
///
/// This is the LoadEventNexus→MDEventWorkspace transformation that
/// precedes MDNorm/BinMD in the Garnet workflow (paper Fig. 3).  Per
/// event:
///   λ  = (h/mₙ)·TOF / flightPath(detector)        (units module)
///   k  = 2π/λ
///   Q_lab    = k · (beamDir − detDir(detector))
///   Q_sample = R⁻¹ · Q_lab
/// with optional single-crystal Lorentz correction
///   weight *= sin²θ / λ⁴
/// (Mantid's LorentzCorrection flag), optional wavelength-band
/// filtering, and detector-mask filtering.  Filtered events keep their
/// table row but carry zero weight and +inf coordinates so every
/// downstream bin lookup rejects them; compactEvents() removes the
/// rows when a dense table is wanted.
///
/// The kernel runs through the portable Executor; conversion is a
/// host-side stage in the paper's workflow (part of UpdateEvents), so a
/// DeviceSim executor is transparently downgraded to the CPU pool
/// rather than faking a device launch over host-resident arrays.

#include "vates/events/event_table.hpp"
#include "vates/events/generator.hpp"
#include "vates/events/raw_events.hpp"
#include "vates/geometry/detector_mask.hpp"
#include "vates/geometry/instrument.hpp"
#include "vates/parallel/executor.hpp"

namespace vates {

struct ConvertOptions {
  /// Apply the single-crystal Lorentz factor sin²θ/λ⁴.
  bool lorentzCorrection = false;
  /// Drop events whose momentum falls outside the run's [kMin, kMax].
  bool filterMomentumBand = true;
};

/// Convert a raw event list for one run.  \p mask may be nullptr (no
/// masking).  Returns a table with one row per raw event, filtered rows
/// zero-weighted (see file comment).
EventTable convertToMD(const Executor& executor, const Instrument& instrument,
                       const DetectorMask* mask, const RunInfo& run,
                       const RawEventList& raw,
                       const ConvertOptions& options = {});

/// Remove zero-weight/+inf rows produced by conversion filtering.
/// Returns the number of removed events.
std::size_t compactEvents(EventTable& events);

} // namespace vates
