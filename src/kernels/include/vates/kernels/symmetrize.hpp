#pragma once
/// \file symmetrize.hpp
/// Post-hoc histogram symmetrization — the bin-level alternative to the
/// kernels' event-level symmetry loop.
///
/// The symmetry-operation loop is the dominant cost multiplier in both
/// MDNorm and BinMD (×6 for Benzil, ×24 for Bixbyite — the outer loop
/// of Listings 1–3).  An alternative the production ecosystem also
/// offers (Mantid's SymmetriseMDHisto) is to reduce with the identity
/// operation only and *fold* the finished histograms over the point
/// group afterwards: O(bins × ops) instead of O(work-items × ops).
///
/// The fold is a gather: every output bin sums the input bins whose
/// centers are the symmetry images of its own center.  Applied to the
/// signal and normalization histograms separately (before the
/// division), it reproduces the event-level result up to bin-center
/// discretization — exact only when bin boundaries are themselves
/// symmetric.  bench_ablation_symmetrize quantifies both the speedup
/// and the discretization error.

#include "vates/geometry/mat3.hpp"
#include "vates/histogram/binning.hpp"
#include "vates/histogram/histogram3d.hpp"
#include "vates/parallel/executor.hpp"

#include <span>

namespace vates {

/// Fold \p input over the operations: output bin b receives
/// Σ_op input[bin containing W⁻¹·op·W·center(b)] (missing images
/// contribute nothing).  Race-free gather; runs on any backend.
Histogram3D symmetrizeFold(const Executor& executor, const Histogram3D& input,
                           std::span<const M33> symmetryOps,
                           const Projection& projection);

} // namespace vates
