#pragma once
/// \file trajectory_walk.hpp
/// Sort-free streaming traversal of one trajectory through the
/// histogram grid — an Amanatides–Woo style 3-D DDA.
///
/// The legacy MDNorm shape (calculateIntersections → comb sort →
/// per-segment grid.locate) materializes every grid-plane crossing of
/// the ray p(k) = k·t before it can walk segments in momentum order.
/// But a straight ray crosses the planes of each axis in *monotone*
/// momentum order, so the merged crossing sequence can be produced
/// directly: keep, per axis, the momentum of the next plane crossing
/// (kNext) and repeatedly advance the axis with the smallest one.  Each
/// advance steps that axis' cell index by ±1, so the flat bin of every
/// segment is maintained incrementally — no intersection buffer, no
/// sort, no locate; O(crossings) work with O(1) state, and therefore no
/// per-thread scratch and no capacity pre-pass.
///
/// Parity with the legacy path is engineered, not approximate:
///  - every crossing momentum is computed as
///        grid.planeEdge(axis, plane) * (1.0 / t[axis])
///    — bitwise the expression tryPlane() evaluates — so the emitted
///    k-sequence equals the sorted legacy k-sequence exactly;
///  - the band is clipped to the grid hull using the *same* plane-edge
///    expression for the boundary planes (never min/max divided by t,
///    which can differ in the last bit);
///  - a tie (the ray piercing a grid edge or corner) advances every
///    tied axis in one step, mirroring the zero-width segments the
///    legacy pair-walk skips via its k2 <= k1 guard;
///  - segments the legacy path drops because their midpoint lies
///    outside the grid (crossings admitted by insideAxisClosed's
///    boundary slack) are never generated here, because the walk starts
///    and ends at the clipped hull.

#include "vates/geometry/vec3.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/kernels/intersections.hpp"

#include <cmath>
#include <cstddef>
#include <limits>

namespace vates {

/// Walk p(k) = k·t for k in [kMin, kMax] through \p grid, invoking
/// visit(k1, k2, bin) for every segment whose cell lies inside the grid,
/// in strictly increasing momentum order (k1 < k2, bin < grid.size()).
/// Device-friendly: no allocation, no recursion, plain loops over POD
/// state.  Returns the number of segments visited.
template <typename Visitor>
inline std::size_t traverseTrajectory(const GridView& grid, const V3& t,
                                      double kMin, double kMax,
                                      Visitor&& visit) {
  constexpr double kInfinity = std::numeric_limits<double>::infinity();

  // ---- Clip the momentum band to the grid hull -------------------------
  double kStart = kMin;
  double kEnd = kMax;
  double inverseT[3] = {0.0, 0.0, 0.0};
  bool crossesPlanes[3] = {false, false, false};
  for (std::size_t axis = 0; axis < 3; ++axis) {
    if (std::fabs(t[axis]) < kTrajectoryParallelTolerance) {
      continue; // parallel to this axis' planes: constrained below
    }
    crossesPlanes[axis] = true;
    const double inv = 1.0 / t[axis];
    inverseT[axis] = inv;
    // Same expression tryPlane uses for the boundary planes, so the
    // clipped endpoints are bitwise the legacy entry/exit crossings.
    const double kA = grid.planeEdge(axis, 0) * inv;
    const double kB = grid.planeEdge(axis, grid.n[axis]) * inv;
    const double kLow = kA < kB ? kA : kB;
    const double kHigh = kA < kB ? kB : kA;
    if (kLow > kStart) {
      kStart = kLow;
    }
    if (kHigh < kEnd) {
      kEnd = kHigh;
    }
  }
  if (!(kStart < kEnd)) {
    return 0; // band misses the box (also rejects NaN directions)
  }
  // Axes the ray is parallel to contribute no crossings, but their
  // coordinate still drifts by t[axis]·k (sub-tolerance, yet possibly
  // across several cells of a pathologically thin axis).  They are
  // binned per segment at the segment midpoint below — exactly the
  // per-segment locate() the legacy pair-walk performs.
  const bool hasParallel =
      !(crossesPlanes[0] && crossesPlanes[1] && crossesPlanes[2]);

  // ---- Per-axis stepping state -----------------------------------------
  // nextPlane[axis] is the first plane crossed strictly after kStart;
  // the current cell is derived from it (ascending coordinate: cell =
  // nextPlane − 1; descending: cell = nextPlane), which stays
  // consistent even when kStart sits exactly on a plane.
  std::ptrdiff_t cell[3];
  std::ptrdiff_t nextPlane[3] = {0, 0, 0};
  std::ptrdiff_t planeStep[3] = {0, 0, 0};
  std::ptrdiff_t flatStep[3] = {0, 0, 0};
  double kNext[3] = {kInfinity, kInfinity, kInfinity};
  const auto n0 = static_cast<std::ptrdiff_t>(grid.n[0]);
  const auto n1 = static_cast<std::ptrdiff_t>(grid.n[1]);
  const auto n2 = static_cast<std::ptrdiff_t>(grid.n[2]);
  const std::ptrdiff_t nAxis[3] = {n0, n1, n2};
  const std::ptrdiff_t stride[3] = {n1 * n2, n2, 1};

  for (std::size_t axis = 0; axis < 3; ++axis) {
    const std::ptrdiff_t n = nAxis[axis];
    if (!crossesPlanes[axis]) {
      cell[axis] = 0; // excluded from flatBin; resolved per segment
      continue;
    }
    const double inv = inverseT[axis];
    const bool ascending = inv > 0.0; // coordinate grows with momentum
    const double entry =
        (t[axis] * kStart - grid.min[axis]) * grid.inverseWidth[axis];
    std::ptrdiff_t plane =
        ascending ? static_cast<std::ptrdiff_t>(std::floor(entry)) + 1
                  : static_cast<std::ptrdiff_t>(std::ceil(entry)) - 1;
    // The float candidate can land one plane off when the entry point
    // sits (nearly) on a plane; nudge until `plane` is the first
    // crossing strictly beyond kStart.  Each loop runs O(1) times.
    if (ascending) {
      while (plane <= n && grid.planeEdge(axis, static_cast<std::size_t>(
                               plane)) * inv <= kStart) {
        ++plane;
      }
      while (plane > 0 && grid.planeEdge(axis, static_cast<std::size_t>(
                              plane - 1)) * inv > kStart) {
        --plane;
      }
      cell[axis] = plane - 1;
    } else {
      while (plane >= 0 && grid.planeEdge(axis, static_cast<std::size_t>(
                               plane)) * inv <= kStart) {
        --plane;
      }
      while (plane < n && grid.planeEdge(axis, static_cast<std::size_t>(
                              plane + 1)) * inv > kStart) {
        ++plane;
      }
      cell[axis] = plane;
    }
    if (cell[axis] < 0 || cell[axis] >= n) {
      return 0; // entry pushed outside by rounding: nothing inside
    }
    nextPlane[axis] = plane;
    planeStep[axis] = ascending ? 1 : -1;
    flatStep[axis] = ascending ? stride[axis] : -stride[axis];
    kNext[axis] = plane >= 0 && plane <= n
                      ? grid.planeEdge(axis, static_cast<std::size_t>(plane)) *
                            inv
                      : kInfinity;
  }

  std::ptrdiff_t flatBin = (cell[0] * n1 + cell[1]) * n2 + cell[2];

  // ---- The walk --------------------------------------------------------
  std::size_t segments = 0;
  double k1 = kStart;
  for (;;) {
    double k2 = kEnd;
    if (kNext[0] < k2) {
      k2 = kNext[0];
    }
    if (kNext[1] < k2) {
      k2 = kNext[1];
    }
    if (kNext[2] < k2) {
      k2 = kNext[2];
    }
    if (k2 > k1) {
      if (!hasParallel) {
        visit(k1, k2, static_cast<std::size_t>(flatBin));
        ++segments;
      } else {
        // Bin parallel axes at the segment midpoint — the same
        // expression the sorted-keys locate evaluates, so a coordinate
        // that drifts across cells (or out of the grid) lands segments
        // exactly where the legacy path lands them.
        const double mid = 0.5 * (k1 + k2);
        std::ptrdiff_t bin = flatBin;
        bool inside = true;
        for (std::size_t axis = 0; axis < 3; ++axis) {
          if (crossesPlanes[axis]) {
            continue;
          }
          const std::size_t c = grid.axisBin(axis, t[axis] * mid);
          if (c >= grid.n[axis]) {
            inside = false;
            break;
          }
          bin += static_cast<std::ptrdiff_t>(c) * stride[axis];
        }
        if (inside) {
          visit(k1, k2, static_cast<std::size_t>(bin));
          ++segments;
        }
      }
    }
    if (!(k2 < kEnd)) {
      return segments;
    }
    // Step every axis whose crossing is at (or, for degenerate plane
    // spacings, before) k2 — a corner advances two or three cells in
    // one iteration with no zero-width segment emitted.
    for (std::size_t axis = 0; axis < 3; ++axis) {
      if (kNext[axis] <= k2) {
        cell[axis] += planeStep[axis];
        if (cell[axis] < 0 || cell[axis] >= nAxis[axis]) {
          return segments; // stepped out of the hull: walk complete
        }
        flatBin += flatStep[axis];
        nextPlane[axis] += planeStep[axis];
        // Recomputed from the plane edge each step (no += accumulation
        // drift), keeping every crossing bitwise equal to tryPlane's.
        kNext[axis] =
            nextPlane[axis] >= 0 && nextPlane[axis] <= nAxis[axis]
                ? grid.planeEdge(axis,
                                 static_cast<std::size_t>(nextPlane[axis])) *
                      inverseT[axis]
                : kInfinity;
      }
    }
    k1 = k2;
  }
}

} // namespace vates
