#pragma once
/// \file trajectory_walk.hpp
/// Sort-free streaming traversal of one trajectory through the
/// histogram grid — an Amanatides–Woo style 3-D DDA.
///
/// The legacy MDNorm shape (calculateIntersections → comb sort →
/// per-segment grid.locate) materializes every grid-plane crossing of
/// the ray p(k) = k·t before it can walk segments in momentum order.
/// But a straight ray crosses the planes of each axis in *monotone*
/// momentum order, so the merged crossing sequence can be produced
/// directly: keep, per axis, the momentum of the next plane crossing
/// (kNext) and repeatedly advance the axis with the smallest one.  Each
/// advance steps that axis' cell index by ±1, so the flat bin of every
/// segment is maintained incrementally — no intersection buffer, no
/// sort, no locate; O(crossings) work with O(1) state, and therefore no
/// per-thread scratch and no capacity pre-pass.
///
/// Parity with the legacy path is engineered, not approximate:
///  - every crossing momentum is computed as
///        grid.planeEdge(axis, plane) * (1.0 / t[axis])
///    — bitwise the expression tryPlane() evaluates — so the emitted
///    k-sequence equals the sorted legacy k-sequence exactly;
///  - the band is clipped to the grid hull using the *same* plane-edge
///    expression for the boundary planes (never min/max divided by t,
///    which can differ in the last bit);
///  - a tie (the ray piercing a grid edge or corner) advances every
///    tied axis in one step, mirroring the zero-width segments the
///    legacy pair-walk skips via its k2 <= k1 guard;
///  - segments the legacy path drops because their midpoint lies
///    outside the grid (crossings admitted by insideAxisClosed's
///    boundary slack) are never generated here, because the walk starts
///    and ends at the clipped hull.
///
/// Two entry points share the clip/init code (detail::initWalk) and
/// the loop (detail::runWalk): traverseTrajectory is the scalar
/// original; traverseTrajectorySimd accepts optional per-launch
/// plane-edge tables (PlaneEdges) that hoist planeEdge's divide off
/// the step chain — bitwise the same crossings at load latency.  Both
/// emit the *identical* segment stream, so either may back the Dda
/// traversal under any simd mode without moving a single deposit.
/// (See runWalk's comment for why the loop itself stays scalar: every
/// vectorized variant measured slower on this serial recurrence.)

#include "vates/geometry/vec3.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/support/simd.hpp"

#include <bit>
#include <cmath>
#include <cstddef>
#include <limits>

namespace vates {

/// Optional per-axis plane-edge tables for the stream walk: entry p of
/// axis a holds grid.planeEdge(a, p), precomputed once per kernel
/// launch.  planeEdge divides (planeIndex / inverseWidth — the exact
/// legacy expression, which parity forbids changing), and that divide
/// sits on the serial critical path of every DDA step; a table load
/// carries the identical bits at L1-load latency instead of
/// divide latency.  Null pointers mean "compute on the fly" — the
/// scalar walk's unchanged behavior.
struct PlaneEdges {
  const double* e[3] = {nullptr, nullptr, nullptr};
};

/// Vectorized momentum-band clip over simd::kWidth trajectories at
/// once — the walk's cross-trajectory SIMD axis.  A DDA walk is an
/// inherently sequential recurrence (each step depends on the last), so
/// lanes pay off *across* independent trajectories, not inside one; and
/// on thin-slab workloads most trajectories never reach the walk at
/// all: they die in initWalk's hull clip, whose three reciprocals and
/// boundary-plane products dominate the whole kernel.  This batch
/// evaluates that clip compare-for-compare with initWalk (same IEEE
/// ops, same select predicates, lanes parallel to an axis skip that
/// axis' constraint exactly like the scalar `continue`), so a lane is
/// rejected here if and only if initWalk's first `return false` would
/// fire for it.  Survivors re-run the scalar clip inside their walk —
/// redundant work only for the minority of trajectories that hit the
/// grid, and bitwise-free: every deposit still flows through the
/// unchanged per-trajectory path in detector order.
struct BandClipBatch {
  simd::f64v kMinV, kMaxV, tolV, oneV;
  simd::f64v edgeLow[3], edgeHigh[3];

  BandClipBatch(const GridView& grid, double kMin, double kMax) noexcept
      : kMinV(simd::f64v::broadcast(kMin)),
        kMaxV(simd::f64v::broadcast(kMax)),
        tolV(simd::f64v::broadcast(kTrajectoryParallelTolerance)),
        oneV(simd::f64v::broadcast(1.0)) {
    for (std::size_t axis = 0; axis < 3; ++axis) {
      edgeLow[axis] = simd::f64v::broadcast(grid.planeEdge(axis, 0));
      edgeHigh[axis] =
          simd::f64v::broadcast(grid.planeEdge(axis, grid.n[axis]));
    }
  }

  /// Bit l set ⇔ lane l's clipped band is empty (initWalk would return
  /// false at the clip; NaN directions are never rejected, matching the
  /// scalar compares' NaN-false behavior).  Lane l's direction is
  /// (tx lane l, ty lane l, tz lane l).
  unsigned rejected(simd::f64v tx, simd::f64v ty,
                    simd::f64v tz) const noexcept {
    const simd::f64v columns[3] = {tx, ty, tz};
    simd::f64v kStart = kMinV;
    simd::f64v kEnd = kMaxV;
    for (std::size_t axis = 0; axis < 3; ++axis) {
      const simd::f64v tAxis = columns[axis];
      const simd::Mask parallel = simd::cmpLT(simd::abs(tAxis), tolV);
      const simd::f64v inv = oneV / tAxis;
      const simd::f64v kA = edgeLow[axis] * inv;
      const simd::f64v kB = edgeHigh[axis] * inv;
      const simd::f64v kLow = simd::minTernary(kA, kB);
      const simd::f64v kHigh = simd::maxTernary(kA, kB);
      // `if (kLow > kStart) kStart = kLow` / `if (kHigh < kEnd) kEnd =
      // kHigh`, masked off for parallel lanes (the scalar `continue`).
      const simd::f64v clippedStart =
          simd::select(simd::cmpLT(kStart, kLow), kLow, kStart);
      const simd::f64v clippedEnd =
          simd::select(simd::cmpLT(kHigh, kEnd), kHigh, kEnd);
      kStart = simd::select(parallel, kStart, clippedStart);
      kEnd = simd::select(parallel, kEnd, clippedEnd);
    }
    return ~simd::laneBits(simd::cmpLT(kStart, kEnd)) &
           ((1u << simd::kWidth) - 1u);
  }

  /// SoA-pointer convenience overload.
  unsigned rejected(const double* tx, const double* ty,
                    const double* tz) const noexcept {
    return rejected(simd::f64v::load(tx), simd::f64v::load(ty),
                    simd::f64v::load(tz));
  }
};

namespace detail {

/// Clipped band + per-axis DDA stepping state shared by both walk
/// loops.  kNext has a fourth, permanently-+inf lane so the SIMD walk
/// can load it straight into a 4-wide register.
struct WalkState {
  double kStart = 0.0;
  double kEnd = 0.0;
  double inverseT[3] = {0.0, 0.0, 0.0};
  bool crossesPlanes[3] = {false, false, false};
  bool hasParallel = false;
  std::ptrdiff_t cell[3] = {0, 0, 0};
  std::ptrdiff_t nextPlane[3] = {0, 0, 0};
  std::ptrdiff_t planeStep[3] = {0, 0, 0};
  std::ptrdiff_t flatStep[3] = {0, 0, 0};
  double kNext[4] = {0.0, 0.0, 0.0, 0.0};
  std::ptrdiff_t nAxis[3] = {0, 0, 0};
  std::ptrdiff_t stride[3] = {0, 0, 0};
  std::ptrdiff_t flatBin = 0;
  const double* edge[3] = {nullptr, nullptr, nullptr};
};

/// planeEdge through the optional precomputed table — bitwise the same
/// value either way (the table is filled with planeEdge itself).
inline double walkPlaneEdge(const GridView& grid, const WalkState& w,
                            std::size_t axis, std::size_t plane) noexcept {
  return w.edge[axis] != nullptr ? w.edge[axis][plane]
                                 : grid.planeEdge(axis, plane);
}

/// Clip [kMin, kMax] to the grid hull and initialize the stepping
/// state.  Returns false when the band misses the box (nothing to
/// walk); the state is then unspecified.
inline bool initWalk(const GridView& grid, const V3& t, double kMin,
                     double kMax, WalkState& w,
                     PlaneEdges edges = {}) noexcept {
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  w.edge[0] = edges.e[0];
  w.edge[1] = edges.e[1];
  w.edge[2] = edges.e[2];

  // ---- Clip the momentum band to the grid hull -------------------------
  w.kStart = kMin;
  w.kEnd = kMax;
  for (std::size_t axis = 0; axis < 3; ++axis) {
    if (std::fabs(t[axis]) < kTrajectoryParallelTolerance) {
      continue; // parallel to this axis' planes: constrained below
    }
    w.crossesPlanes[axis] = true;
    const double inv = 1.0 / t[axis];
    w.inverseT[axis] = inv;
    // Same expression tryPlane uses for the boundary planes, so the
    // clipped endpoints are bitwise the legacy entry/exit crossings.
    const double kA = walkPlaneEdge(grid, w, axis, 0) * inv;
    const double kB = walkPlaneEdge(grid, w, axis, grid.n[axis]) * inv;
    const double kLow = kA < kB ? kA : kB;
    const double kHigh = kA < kB ? kB : kA;
    if (kLow > w.kStart) {
      w.kStart = kLow;
    }
    if (kHigh < w.kEnd) {
      w.kEnd = kHigh;
    }
  }
  if (!(w.kStart < w.kEnd)) {
    return false; // band misses the box (also rejects NaN directions)
  }
  // Axes the ray is parallel to contribute no crossings, but their
  // coordinate still drifts by t[axis]·k (sub-tolerance, yet possibly
  // across several cells of a pathologically thin axis).  They are
  // binned per segment at the segment midpoint in the walk loops —
  // exactly the per-segment locate() the legacy pair-walk performs.
  w.hasParallel =
      !(w.crossesPlanes[0] && w.crossesPlanes[1] && w.crossesPlanes[2]);

  // ---- Per-axis stepping state -----------------------------------------
  // nextPlane[axis] is the first plane crossed strictly after kStart;
  // the current cell is derived from it (ascending coordinate: cell =
  // nextPlane − 1; descending: cell = nextPlane), which stays
  // consistent even when kStart sits exactly on a plane.
  const auto n0 = static_cast<std::ptrdiff_t>(grid.n[0]);
  const auto n1 = static_cast<std::ptrdiff_t>(grid.n[1]);
  const auto n2 = static_cast<std::ptrdiff_t>(grid.n[2]);
  w.nAxis[0] = n0;
  w.nAxis[1] = n1;
  w.nAxis[2] = n2;
  w.stride[0] = n1 * n2;
  w.stride[1] = n2;
  w.stride[2] = 1;
  w.kNext[0] = kInfinity;
  w.kNext[1] = kInfinity;
  w.kNext[2] = kInfinity;
  w.kNext[3] = kInfinity; // pad lane: never the min, never steps

  for (std::size_t axis = 0; axis < 3; ++axis) {
    const std::ptrdiff_t n = w.nAxis[axis];
    if (!w.crossesPlanes[axis]) {
      w.cell[axis] = 0; // excluded from flatBin; resolved per segment
      continue;
    }
    const double inv = w.inverseT[axis];
    const bool ascending = inv > 0.0; // coordinate grows with momentum
    const double entry =
        (t[axis] * w.kStart - grid.min[axis]) * grid.inverseWidth[axis];
    std::ptrdiff_t plane =
        ascending ? static_cast<std::ptrdiff_t>(std::floor(entry)) + 1
                  : static_cast<std::ptrdiff_t>(std::ceil(entry)) - 1;
    // The float candidate can land one plane off when the entry point
    // sits (nearly) on a plane; nudge until `plane` is the first
    // crossing strictly beyond kStart.  Each loop runs O(1) times.
    if (ascending) {
      while (plane <= n && walkPlaneEdge(grid, w, axis, static_cast<std::size_t>(
                               plane)) * inv <= w.kStart) {
        ++plane;
      }
      while (plane > 0 && walkPlaneEdge(grid, w, axis, static_cast<std::size_t>(
                              plane - 1)) * inv > w.kStart) {
        --plane;
      }
      w.cell[axis] = plane - 1;
    } else {
      while (plane >= 0 && walkPlaneEdge(grid, w, axis, static_cast<std::size_t>(
                               plane)) * inv <= w.kStart) {
        --plane;
      }
      while (plane < n && walkPlaneEdge(grid, w, axis, static_cast<std::size_t>(
                              plane + 1)) * inv > w.kStart) {
        ++plane;
      }
      w.cell[axis] = plane;
    }
    if (w.cell[axis] < 0 || w.cell[axis] >= n) {
      return false; // entry pushed outside by rounding: nothing inside
    }
    w.nextPlane[axis] = plane;
    w.planeStep[axis] = ascending ? 1 : -1;
    w.flatStep[axis] = ascending ? w.stride[axis] : -w.stride[axis];
    w.kNext[axis] = plane >= 0 && plane <= n
                        ? walkPlaneEdge(grid, w, axis, static_cast<std::size_t>(
                                                   plane)) * inv
                        : kInfinity;
  }

  w.flatBin = (w.cell[0] * n1 + w.cell[1]) * n2 + w.cell[2];
  return true;
}

/// Advance \p axis past its current crossing.  Returns false when the
/// step leaves the hull (the walk is complete).
inline bool stepAxis(const GridView& grid, WalkState& w,
                     std::size_t axis) noexcept {
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  w.cell[axis] += w.planeStep[axis];
  if (w.cell[axis] < 0 || w.cell[axis] >= w.nAxis[axis]) {
    return false; // stepped out of the hull: walk complete
  }
  w.flatBin += w.flatStep[axis];
  w.nextPlane[axis] += w.planeStep[axis];
  // Recomputed from the plane edge each step (no += accumulation
  // drift), keeping every crossing bitwise equal to tryPlane's.
  w.kNext[axis] =
      w.nextPlane[axis] >= 0 && w.nextPlane[axis] <= w.nAxis[axis]
          ? walkPlaneEdge(grid, w, axis,
                          static_cast<std::size_t>(w.nextPlane[axis])) *
                w.inverseT[axis]
          : kInfinity;
  return true;
}

/// Shared segment emission: bins parallel axes at the segment midpoint
/// when needed.  Returns true when a segment was visited.
template <typename Visitor>
inline bool emitSegment(const GridView& grid, const V3& t,
                        const WalkState& w, double k1, double k2,
                        Visitor& visit) {
  if (!w.hasParallel) {
    visit(k1, k2, static_cast<std::size_t>(w.flatBin));
    return true;
  }
  // Bin parallel axes at the segment midpoint — the same expression
  // the sorted-keys locate evaluates, so a coordinate that drifts
  // across cells (or out of the grid) lands segments exactly where the
  // legacy path lands them.
  const double mid = 0.5 * (k1 + k2);
  std::ptrdiff_t bin = w.flatBin;
  for (std::size_t axis = 0; axis < 3; ++axis) {
    if (w.crossesPlanes[axis]) {
      continue;
    }
    const std::size_t c = grid.axisBin(axis, t[axis] * mid);
    if (c >= grid.n[axis]) {
      return false;
    }
    bin += static_cast<std::ptrdiff_t>(c) * w.stride[axis];
  }
  visit(k1, k2, static_cast<std::size_t>(bin));
  return true;
}

/// The walk loop over an initialized state, shared by the entry points
/// below.  The branchy structure is deliberate — it beat every
/// vectorized rewrite that was measured against it:
///  - a 4-lane in-register variant (horizontal min + movemask over
///    [kNext0..2, +inf]) ran ~2× slower: every step round-trips
///    vector→scalar→vector through reduceMin/laneBits on the loop's
///    serial dependency chain, whose latency — not instruction count —
///    bounds the walk;
///  - a branch-free conditional-move axis selection also lost: the
///    per-axis branches are well-predicted on real trajectories (the
///    crossing pattern follows the ray's slope), and speculation
///    across them overlaps successive steps' table loads, which cmov
///    chains serialize;
///  - a lockstep walk advancing simd::kWidth *independent*
///    trajectories per iteration lost too (12.1 vs 10.5 ns/segment on
///    the volumetric probe): the per-iteration emit/step mask scans
///    interleave four lanes' axis patterns into branch sequences the
///    predictor cannot learn, where the single-trajectory pattern is
///    learnable.
/// SIMD pays off around the walk — the hull-clip prefilter
/// (BandClipBatch), the trajectory transform, the flux batch — not
/// inside the recurrence.
template <typename Visitor>
inline std::size_t runWalk(const GridView& grid, const V3& t, WalkState& w,
                           Visitor&& visit) {
  std::size_t segments = 0;
  double k1 = w.kStart;
  for (;;) {
    double k2 = w.kEnd;
    if (w.kNext[0] < k2) {
      k2 = w.kNext[0];
    }
    if (w.kNext[1] < k2) {
      k2 = w.kNext[1];
    }
    if (w.kNext[2] < k2) {
      k2 = w.kNext[2];
    }
    if (k2 > k1) {
      if (emitSegment(grid, t, w, k1, k2, visit)) {
        ++segments;
      }
    }
    if (!(k2 < w.kEnd)) {
      return segments;
    }
    for (std::size_t axis = 0; axis < 3; ++axis) {
      if (w.kNext[axis] <= k2) {
        if (!stepAxis(grid, w, axis)) {
          return segments;
        }
      }
    }
    k1 = k2;
  }
}

} // namespace detail

/// Walk p(k) = k·t for k in [kMin, kMax] through \p grid, invoking
/// visit(k1, k2, bin) for every segment whose cell lies inside the grid,
/// in strictly increasing momentum order (k1 < k2, bin < grid.size()).
/// Device-friendly: no allocation, no recursion, plain loops over POD
/// state.  Returns the number of segments visited.
template <typename Visitor>
inline std::size_t traverseTrajectory(const GridView& grid, const V3& t,
                                      double kMin, double kMax,
                                      Visitor&& visit) {
  detail::WalkState w;
  if (!detail::initWalk(grid, t, kMin, kMax, w)) {
    return 0;
  }

  // ---- The walk --------------------------------------------------------
  std::size_t segments = 0;
  double k1 = w.kStart;
  for (;;) {
    double k2 = w.kEnd;
    if (w.kNext[0] < k2) {
      k2 = w.kNext[0];
    }
    if (w.kNext[1] < k2) {
      k2 = w.kNext[1];
    }
    if (w.kNext[2] < k2) {
      k2 = w.kNext[2];
    }
    if (k2 > k1) {
      if (detail::emitSegment(grid, t, w, k1, k2, visit)) {
        ++segments;
      }
    }
    if (!(k2 < w.kEnd)) {
      return segments;
    }
    // Step every axis whose crossing is at (or, for degenerate plane
    // spacings, before) k2 — a corner advances two or three cells in
    // one iteration with no zero-width segment emitted.
    for (std::size_t axis = 0; axis < 3; ++axis) {
      if (w.kNext[axis] <= k2) {
        if (!detail::stepAxis(grid, w, axis)) {
          return segments;
        }
      }
    }
    k1 = k2;
  }
}

/// Stream-optimized single-trajectory walk backing the SoA/SIMD kernel
/// path: identical segment stream to traverseTrajectory (bitwise —
/// pinned by tests/test_simd.cpp), accelerated by the optional
/// plane-edge tables that hoist planeEdge's divide off the step chain.
template <typename Visitor>
inline std::size_t traverseTrajectorySimd(const GridView& grid, const V3& t,
                                          double kMin, double kMax,
                                          Visitor&& visit,
                                          PlaneEdges edges = {}) {
  detail::WalkState w;
  if (!detail::initWalk(grid, t, kMin, kMax, w, edges)) {
    return 0;
  }
  return detail::runWalk(grid, t, w, visit);
}

} // namespace vates
