#pragma once
/// \file intersections.hpp
/// Trajectory/grid-plane intersection calculation — the inner loops of
/// the paper's Listing 1.
///
/// For elastic TOF diffraction, detector d's locus in histogram space
/// as the incident momentum sweeps [kMin, kMax] is the straight ray
/// p(k) = k·t, where t folds together the goniometer, UB, symmetry
/// operation and slicing projection (see transforms.hpp).  MDNorm needs
/// every crossing of that segment with the histogram's H-, K- and
/// L-bin planes, plus the segment endpoints when they lie inside the
/// box — at most n[0]+n[1]+n[2]+2 points, "< hBins + kBins + lBins + 2"
/// in the paper's annotation.
///
/// Two search strategies implement the paper's §III-B algorithmic
/// improvement ("improving the complexity of linear searches with a
/// more adaptable region-of-interest strategy"):
///   - Linear: test every plane of every axis (Mantid-style);
///   - Roi:    compute the index interval of planes the segment can
///             cross on each axis and visit only those.

#include "vates/geometry/vec3.hpp"
#include "vates/histogram/grid_view.hpp"

#include <cstddef>

namespace vates {

/// One trajectory/plane crossing: position in histogram coordinates and
/// the momentum at which it occurs.  POD, device-friendly.
struct Intersection {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double k = 0.0;
};

enum class PlaneSearch : int { Linear = 0, Roi = 1 };

/// |t[axis]| below this is treated as parallel to the axis' planes (no
/// crossings on that axis).  Shared between calculateIntersections and
/// the streaming traversal (trajectory_walk.hpp) so both paths classify
/// every trajectory identically.
inline constexpr double kTrajectoryParallelTolerance = 1e-12;

/// Upper bound on intersections for \p grid (callers size scratch with
/// this): n[0]+n[1]+n[2] plane crossings + 2 endpoints.
inline std::size_t maxIntersections(const GridView& grid) noexcept {
  return grid.n[0] + grid.n[1] + grid.n[2] + 2 + 3; // +3: both edges of each axis
}

/// Compute all crossings of p(k) = k·t for k in [kMin, kMax] with the
/// grid's bin planes (plus in-box endpoints), unsorted, into \p out
/// (capacity >= maxIntersections(grid)).  Returns the count.
///
/// Crossings with bitwise-equal momenta are emitted once: a trajectory
/// through a grid edge or corner crosses two or three planes at the
/// same k, and a band endpoint can coincide with a plane crossing.
/// Such duplicates only ever produced zero-width segments (skipped by
/// every consumer's k2 <= k1 guard), so deduplication cannot change
/// results — it just stops corners from inflating the intersection
/// count and wasting sort work.  Near-duplicates (1-ulp apart) are
/// kept: their segments are degenerate but not provably so.
std::size_t calculateIntersections(const GridView& grid, const V3& t,
                                   double kMin, double kMax,
                                   PlaneSearch strategy, Intersection* out);

} // namespace vates
