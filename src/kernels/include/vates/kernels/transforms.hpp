#pragma once
/// \file transforms.hpp
/// Pre-composed transform tables for the kernels.
///
/// Folding every per-(run, symmetry-op) matrix product out of the hot
/// loops is one of the proxies' algorithmic clean-ups over the
/// monolithic workflow: kernels see one matrix per operation.
///
///  - BinMD: events store Q_sample, so the per-op transform is
///        B_op = W⁻¹ · op · (U·B)⁻¹ / 2π
///    (projected coordinates from a sample-frame Q).
///  - MDNorm: trajectories are expressed through the lab-frame detector
///    direction, so the goniometer joins the chain:
///        N_op = W⁻¹ · op · (U·B)⁻¹ · R⁻¹ / 2π
///    and detector d's ray direction is t = N_op · qLabDirection(d).

#include "vates/geometry/mat3.hpp"
#include "vates/geometry/oriented_lattice.hpp"
#include "vates/geometry/symmetry.hpp"
#include "vates/histogram/binning.hpp"

#include <span>
#include <vector>

namespace vates {

/// Per-op transforms for BinMD (sample-frame Q -> projected coords).
std::vector<M33> binMdTransforms(const Projection& projection,
                                 const OrientedLattice& lattice,
                                 std::span<const M33> symmetryOps);

/// Per-op transforms for MDNorm on one run (lab-frame Q -> projected).
std::vector<M33> mdNormTransforms(const Projection& projection,
                                  const OrientedLattice& lattice,
                                  std::span<const M33> symmetryOps,
                                  const M33& goniometerR);

} // namespace vates
