#pragma once
/// \file binmd.hpp
/// The BinMD kernel (paper Listings 2 and 3): histogram the neutron
/// events.
///
/// One flattened 2D iteration space over (symmetry op × event); each
/// work item transforms the event's sample-frame Q by the pre-composed
/// per-op matrix and accumulates the event's signal into the containing
/// bin — the direct C++ translation of Listing 3's JACC.parallel_for
/// with atomic_push!.  Accumulation goes through GridAccumulator, so
/// the write path (atomic / privatized replicas / tiled caches) is
/// selectable per call; the default Auto policy privatizes small
/// contended grids and falls back to atomics elsewhere.

#include "vates/geometry/mat3.hpp"
#include "vates/histogram/grid_accumulator.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/parallel/executor.hpp"
#include "vates/support/simd.hpp"

#include <span>

namespace vates {

/// Inputs for one run's BinMD.  The event columns are raw pointers so
/// the caller can hand either host memory (CPU backends) or
/// device-resident arrays (Backend::DeviceSim) without copies.
struct BinMDInputs {
  std::span<const M33> transforms; ///< one per symmetry op (B_op)
  const double* qx = nullptr;
  const double* qy = nullptr;
  const double* qz = nullptr;
  const double* signal = nullptr;
  /// Optional squared-error column; required when an error histogram is
  /// passed to runBinMD (Mantid propagates σ² alongside every signal).
  const double* errorSq = nullptr;
  std::size_t nEvents = 0;
};

/// Accumulate the run's events into \p histogram (safe to call
/// repeatedly for many runs into the same buffer; with the default
/// Atomic-or-better strategies each call's deposits add on top of the
/// existing bin contents).  \p accumulate selects the write path; the
/// non-Atomic strategies require the histogram not be written by other
/// executors concurrently with this call.  \p simd selects the
/// event-blocked vector path (Q-transform + locate a register at a
/// time over the SoA columns, cache-blocked deposits; simd_batch.hpp):
/// Auto resolves per backend via simdUseVector, Off is the per-event
/// scalar body bit for bit, and the vector path deposits the identical
/// values in the identical per-worker order — bitwise equal on
/// Backend::Serial, within the oracle tolerance elsewhere.
void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram,
              const AccumulateOptions& accumulate = {},
              SimdMode simd = SimdMode::Auto);

/// Variant that also accumulates the events' squared errors into
/// \p errorSqHistogram (same binning; σ² adds linearly for independent
/// counts).  inputs.errorSq must be non-null.
void runBinMD(const Executor& executor, const BinMDInputs& inputs,
              const GridView& histogram, const GridView& errorSqHistogram,
              const AccumulateOptions& accumulate = {},
              SimdMode simd = SimdMode::Auto);

/// Single-op convenience used by tests: bin events without symmetry.
void runBinMDIdentity(const Executor& executor, const M33& transform,
                      const BinMDInputs& inputs, const GridView& histogram,
                      const AccumulateOptions& accumulate = {},
                      SimdMode simd = SimdMode::Auto);

} // namespace vates
