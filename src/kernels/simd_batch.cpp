#include "vates/kernels/simd_batch.hpp"

namespace vates {

bool simdUseVector(SimdMode mode, Backend backend) noexcept {
  switch (mode) {
  case SimdMode::Off:
    return false;
  case SimdMode::On:
    return true;
  case SimdMode::Auto:
    // The batch paths only pay for themselves with real lanes; on the
    // simulated device each work item is one SIMT lane already, so the
    // per-item blocking would just serialize inside the "thread".
    return simd::kWidth > 1 && backend != Backend::DeviceSim;
  }
  return false;
}

} // namespace vates
