#include "vates/io/histogram_file.hpp"

#include "vates/io/nxlite.hpp"
#include "vates/support/error.hpp"

#include <vector>

namespace vates {

void writeHistogram(nx::Writer& writer, const std::string& prefix,
                    const Histogram3D& histogram) {
  // Axis metadata: per axis (min, max, nBins) plus the projection basis
  // so projected coordinates keep their meaning on reload.
  for (std::size_t axis = 0; axis < 3; ++axis) {
    const BinAxis& binAxis = histogram.axis(axis);
    const double meta[3] = {binAxis.min(), binAxis.max(),
                            static_cast<double>(binAxis.nBins())};
    writer.writeFloat64(prefix + "_axis" + std::to_string(axis), meta);
  }
  const Projection& projection = histogram.projection();
  const double basis[9] = {
      projection.u().x, projection.u().y, projection.u().z,
      projection.v().x, projection.v().y, projection.v().z,
      projection.w().x, projection.w().y, projection.w().z,
  };
  writer.writeFloat64(prefix + "_projection", basis, {3, 3});
  writer.writeFloat64(prefix + "_data", histogram.data(),
                      {static_cast<std::uint64_t>(histogram.nx()),
                       static_cast<std::uint64_t>(histogram.ny()),
                       static_cast<std::uint64_t>(histogram.nz())});
}

Histogram3D readHistogram(nx::Reader& reader, const std::string& prefix) {
  BinAxis axes[3] = {BinAxis("x", 0, 1, 1), BinAxis("y", 0, 1, 1),
                     BinAxis("z", 0, 1, 1)};
  static const char* kNames[3] = {"x", "y", "z"};
  for (std::size_t axis = 0; axis < 3; ++axis) {
    const auto meta =
        reader.readFloat64(prefix + "_axis" + std::to_string(axis));
    if (meta.size() != 3) {
      throw IOError("malformed axis metadata for histogram '" + prefix + "'");
    }
    axes[axis] = BinAxis(kNames[axis], meta[0], meta[1],
                         static_cast<std::size_t>(meta[2]));
  }
  const auto basis = reader.readFloat64(prefix + "_projection");
  if (basis.size() != 9) {
    throw IOError("malformed projection for histogram '" + prefix + "'");
  }
  const Projection projection(V3{basis[0], basis[1], basis[2]},
                              V3{basis[3], basis[4], basis[5]},
                              V3{basis[6], basis[7], basis[8]});

  Histogram3D histogram(axes[0], axes[1], axes[2], projection);
  const auto data = reader.readFloat64(prefix + "_data");
  if (data.size() != histogram.size()) {
    throw IOError("histogram data size mismatch for '" + prefix + "'");
  }
  std::copy(data.begin(), data.end(), histogram.data().begin());
  return histogram;
}

void saveHistogram(const std::string& path, const Histogram3D& histogram) {
  nx::Writer writer(path);
  writeHistogram(writer, "histogram", histogram);
  writer.close();
}

Histogram3D loadHistogram(const std::string& path) {
  nx::Reader reader(path);
  return readHistogram(reader, "histogram");
}

void saveReducedData(const std::string& path, const Histogram3D& signal,
                     const Histogram3D& normalization,
                     const Histogram3D& crossSection) {
  VATES_REQUIRE(signal.sameShape(normalization) &&
                    signal.sameShape(crossSection),
                "reduced data histograms disagree in shape");
  nx::Writer writer(path);
  writeHistogram(writer, "signal", signal);
  writeHistogram(writer, "normalization", normalization);
  writeHistogram(writer, "cross_section", crossSection);
  writer.close();
}

ReducedData loadReducedData(const std::string& path) {
  nx::Reader reader(path);
  return ReducedData{readHistogram(reader, "signal"),
                     readHistogram(reader, "normalization"),
                     readHistogram(reader, "cross_section")};
}

} // namespace vates
