#include "vates/io/event_file.hpp"

#include "vates/io/nxlite.hpp"
#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <algorithm>
#include <vector>

namespace vates {

namespace {
void writeRunMetadata(nx::Writer& writer, const RunInfo& run) {
  writer.writeFloat64("goniometer", run.goniometerR.m, {3, 3});
  writer.writeScalar("proton_charge", run.protonCharge);
  const double band[2] = {run.kMin, run.kMax};
  writer.writeFloat64("momentum_band", band);
  writer.writeScalar("run_index", static_cast<double>(run.runIndex));
}

RunInfo readRunMetadata(nx::Reader& reader, const std::string& path) {
  RunInfo run;
  const auto goniometer = reader.readFloat64("goniometer");
  if (goniometer.size() != 9) {
    throw IOError("goniometer dataset in " + path + " is not 3 x 3");
  }
  std::copy(goniometer.begin(), goniometer.end(), run.goniometerR.m.begin());
  run.protonCharge = reader.readScalar("proton_charge");
  const auto band = reader.readFloat64("momentum_band");
  if (band.size() != 2) {
    throw IOError("momentum_band dataset in " + path + " is not length 2");
  }
  run.kMin = band[0];
  run.kMax = band[1];
  run.runIndex = static_cast<std::uint32_t>(reader.readScalar("run_index"));
  return run;
}
} // namespace

void saveRunFile(const std::string& path, const RunInfo& run,
                 const EventTable& events) {
  nx::Writer writer(path);

  // Events as an N×8 row-major block (one row per event), the on-disk
  // layout the UpdateEvents stage transposes on load.
  std::vector<double> rows(events.size() * EventTable::kColumns);
  events.toRowMajor(rows);
  writer.writeFloat64("events", rows,
                      {static_cast<std::uint64_t>(events.size()),
                       EventTable::kColumns});
  writeRunMetadata(writer, run);
  writer.close();
}

RunFileContent loadRunFile(const std::string& path) {
  nx::Reader reader(path);

  const auto& eventsInfo = reader.info("events");
  if (eventsInfo.shape.size() != 2 ||
      eventsInfo.shape[1] != EventTable::kColumns) {
    throw IOError("events dataset in " + path + " is not N x 8");
  }
  const std::vector<double> rows = reader.readFloat64("events");

  RunFileContent content;
  // The row-major -> column-major transpose (UpdateEvents).
  content.events = EventTable::fromRowMajor(rows);
  content.run = readRunMetadata(reader, path);
  return content;
}

void saveRawRunFile(const std::string& path, const RunInfo& run,
                    const RawEventList& events) {
  nx::Writer writer(path);
  // NeXus event-mode layout: one contiguous dataset per field.
  writer.writeUInt32("event_id", events.detectorIds());
  writer.writeFloat64("event_time_offset", events.tofs());
  writer.writeUInt32("event_pulse_index", events.pulseIndices());
  writer.writeFloat64("event_weight", events.weights());
  writeRunMetadata(writer, run);
  writer.close();
}

RawRunFileContent loadRawRunFile(const std::string& path) {
  nx::Reader reader(path);
  const auto detectors = reader.readUInt32("event_id");
  const auto tofs = reader.readFloat64("event_time_offset");
  const auto pulses = reader.readUInt32("event_pulse_index");
  const auto weights = reader.readFloat64("event_weight");
  if (tofs.size() != detectors.size() || pulses.size() != detectors.size() ||
      weights.size() != detectors.size()) {
    throw IOError("raw event datasets in " + path + " disagree in length");
  }
  RawRunFileContent content;
  content.events.reserve(detectors.size());
  for (std::size_t i = 0; i < detectors.size(); ++i) {
    content.events.append(detectors[i], tofs[i], pulses[i], weights[i]);
  }
  content.run = readRunMetadata(reader, path);
  return content;
}

std::string runFilePath(const std::string& directory,
                        const std::string& workloadName,
                        std::size_t fileIndex) {
  return directory + "/" + workloadName + "_run_" +
         strfmt("%04zu", fileIndex) + ".nxl";
}

std::string rawRunFilePath(const std::string& directory,
                           const std::string& workloadName,
                           std::size_t fileIndex) {
  return directory + "/" + workloadName + "_raw_" +
         strfmt("%04zu", fileIndex) + ".nxl";
}

} // namespace vates
