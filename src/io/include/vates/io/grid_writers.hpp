#pragma once
/// \file grid_writers.hpp
/// Plain-text and image output of histogram slices, used to regenerate
/// the paper's Fig. 4 panels and to let users plot cross-sections with
/// numpy/matplotlib as the artifact description suggests.

#include "vates/histogram/histogram3d.hpp"

#include <string>

namespace vates {

/// Write the z = \p zIndex slice as CSV: a header row with the axis
/// labels and extents, then ny rows × nx columns of values.  NaN bins
/// (uncovered space) are written as "nan".
void writeCsvSlice(const std::string& path, const Histogram3D& histogram,
                   std::size_t zIndex = 0);

/// Write the z = \p zIndex slice as an 8-bit PGM image with optional
/// log scaling (good for Bragg patterns whose dynamic range spans
/// decades).  NaN bins render black.
void writePgmSlice(const std::string& path, const Histogram3D& histogram,
                   std::size_t zIndex = 0, bool logScale = true);

/// Summary statistics of a slice, for textual experiment reports.
struct SliceStats {
  std::size_t coveredBins = 0;  ///< bins with finite values
  std::size_t emptyBins = 0;    ///< NaN / uncovered bins
  double minValue = 0.0;
  double maxValue = 0.0;
  double meanValue = 0.0;
  double coverage() const noexcept {
    const std::size_t total = coveredBins + emptyBins;
    return total == 0 ? 0.0
                      : static_cast<double>(coveredBins) /
                            static_cast<double>(total);
  }
};

SliceStats computeSliceStats(const Histogram3D& histogram,
                             std::size_t zIndex = 0);

} // namespace vates
