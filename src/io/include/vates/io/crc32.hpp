#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to verify every
/// nxlite dataset block — the stand-in for HDF5's checksum filters, and
/// the hook the failure-injection tests corrupt on purpose.

#include <cstddef>
#include <cstdint>

namespace vates {

/// CRC of a byte range, optionally continuing from a previous value
/// (pass the previous return value as \p seed to chain blocks).
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

} // namespace vates
