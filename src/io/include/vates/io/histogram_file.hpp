#pragma once
/// \file histogram_file.hpp
/// Persisting reduced histograms — the counterpart of Garnet's HDF5
/// output file ("the reduced and normalized data scientists would use
/// for further analysis", paper artifact description A₁).
///
/// A reduction file stores the signal, normalization and cross-section
/// histograms with full binning/projection metadata, so an analysis
/// session (or Mantid, in the real workflow) can reload them without
/// the raw events.

#include "vates/histogram/histogram3d.hpp"

#include <string>

namespace vates {

namespace nx {
class Writer;
class Reader;
} // namespace nx

/// Write one histogram under \p prefix ("<prefix>_data",
/// "<prefix>_axis0" ... metadata datasets) into an open nxlite writer.
void writeHistogram(nx::Writer& writer, const std::string& prefix,
                    const Histogram3D& histogram);

/// Read one histogram written by writeHistogram().
Histogram3D readHistogram(nx::Reader& reader, const std::string& prefix);

/// Standalone single-histogram file.
void saveHistogram(const std::string& path, const Histogram3D& histogram);
Histogram3D loadHistogram(const std::string& path);

/// The full reduction output: signal + normalization + cross-section.
struct ReducedData {
  Histogram3D signal;
  Histogram3D normalization;
  Histogram3D crossSection;
};

void saveReducedData(const std::string& path, const Histogram3D& signal,
                     const Histogram3D& normalization,
                     const Histogram3D& crossSection);
ReducedData loadReducedData(const std::string& path);

} // namespace vates
