#pragma once
/// \file event_file.hpp
/// Run-file save/load on top of nxlite — the SaveMD / LoadEventNexus
/// counterpart.  One file per experiment run holds the row-major 8×N
/// event block plus the run metadata ("events, rotations, charge, ..."
/// of Algorithm 1's LOAD step).
///
/// loadRunFile() is the measured **UpdateEvents** stage of Tables
/// III–VI: it reads the contiguous event block and transposes it from
/// on-disk row-major into the in-memory column-major EventTable, just
/// like both of the paper's proxies ("both proxies use wrappers over the
/// C HDF5 API and transpose a 2D array from row-major to column-major").

#include "vates/events/event_table.hpp"
#include "vates/events/generator.hpp"
#include "vates/events/raw_events.hpp"

#include <string>

namespace vates {

struct RunFileContent {
  RunInfo run;
  EventTable events;
};

/// Raw-event variant: the stage-(ii) DAQ stream before ConvertToMD.
struct RawRunFileContent {
  RunInfo run;
  RawEventList events;
};

/// Write one run to \p path (nxlite container).
void saveRunFile(const std::string& path, const RunInfo& run,
                 const EventTable& events);

/// Read one run back; verifies checksums and metadata presence.
RunFileContent loadRunFile(const std::string& path);

/// Write one *raw* run (detector ids, TOFs, pulse indices, weights) to
/// \p path — the NeXus event-mode layout: one dataset per field.
void saveRawRunFile(const std::string& path, const RunInfo& run,
                    const RawEventList& events);

/// Read a raw run back; verifies checksums and field presence.
RawRunFileContent loadRawRunFile(const std::string& path);

/// The canonical file name of run \p fileIndex inside \p directory
/// ("<workload>_run_<index>.nxl").
std::string runFilePath(const std::string& directory,
                        const std::string& workloadName,
                        std::size_t fileIndex);

/// Raw-run variant ("<workload>_raw_<index>.nxl").
std::string rawRunFilePath(const std::string& directory,
                           const std::string& workloadName,
                           std::size_t fileIndex);

} // namespace vates
