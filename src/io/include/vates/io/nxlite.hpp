#pragma once
/// \file nxlite.hpp
/// "nxlite" — a minimal NeXus/HDF5 stand-in.
///
/// No HDF5 library is available in this environment, so raw event runs
/// are stored in a purpose-built container that reproduces the access
/// pattern the paper's UpdateEvents stage measures: named,
/// shape-annotated, checksummed binary datasets read as one contiguous
/// block each.  The format is deliberately simple:
///
///   [8]  magic  "NXLITE01"
///   [4]  u32    dataset count (patched at close)
///   per dataset:
///     [2]  u16    name length, then the name bytes (UTF-8)
///     [1]  u8     dtype (0 = f64, 1 = u64, 2 = u32)
///     [1]  u8     rank (<= 4)
///     [8]*rank    u64 dimensions
///     [8]  u64    payload bytes
///     [..] payload (little-endian, row-major)
///     [4]  u32    CRC-32 of the payload
///
/// Readers scan the dataset directory once at open and read payloads on
/// demand; every read verifies the CRC and throws vates::IOError on any
/// corruption, truncation, or type/shape mismatch.

#include <cstdint>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace vates::nx {

enum class DType : std::uint8_t { Float64 = 0, UInt64 = 1, UInt32 = 2 };

/// Size of one element of \p dtype in bytes.
std::size_t dtypeSize(DType dtype) noexcept;

struct DatasetInfo {
  std::string name;
  DType dtype = DType::Float64;
  std::vector<std::uint64_t> shape;

  std::uint64_t elements() const noexcept;
  std::uint64_t bytes() const noexcept { return elements() * dtypeSize(dtype); }
};

/// Streaming writer; datasets are appended in call order.  The count
/// field is patched when close() (or the destructor) runs.
class Writer {
public:
  explicit Writer(const std::string& path);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void writeFloat64(const std::string& name, std::span<const double> data,
                    std::vector<std::uint64_t> shape = {});
  void writeUInt64(const std::string& name,
                   std::span<const std::uint64_t> data,
                   std::vector<std::uint64_t> shape = {});
  void writeUInt32(const std::string& name,
                   std::span<const std::uint32_t> data,
                   std::vector<std::uint64_t> shape = {});

  /// Scalar convenience.
  void writeScalar(const std::string& name, double value);

  /// Flush, patch the dataset count, and close the file.  Idempotent.
  void close();

private:
  void writeRaw(const std::string& name, DType dtype, const void* data,
                std::size_t bytes, std::vector<std::uint64_t> shape,
                std::uint64_t elements);

  std::ofstream stream_;
  std::string path_;
  std::uint32_t count_ = 0;
  bool closed_ = false;
};

/// Random-access reader.
class Reader {
public:
  explicit Reader(const std::string& path);

  /// Directory of all datasets in file order.
  const std::vector<DatasetInfo>& datasets() const noexcept { return infos_; }

  bool has(const std::string& name) const noexcept;

  /// Info for a named dataset; throws IOError when absent.
  const DatasetInfo& info(const std::string& name) const;

  std::vector<double> readFloat64(const std::string& name);
  std::vector<std::uint64_t> readUInt64(const std::string& name);
  std::vector<std::uint32_t> readUInt32(const std::string& name);

  /// Scalar convenience (1-element Float64 dataset).
  double readScalar(const std::string& name);

private:
  struct Entry {
    DatasetInfo info;
    std::streampos payloadOffset;
  };

  const Entry& entry(const std::string& name) const;
  void readPayload(const Entry& e, void* destination, std::size_t bytes);

  std::string path_;
  std::ifstream stream_;
  std::vector<DatasetInfo> infos_;
  std::map<std::string, Entry> entries_;
};

} // namespace vates::nx
