#include "vates/io/grid_writers.hpp"

#include "vates/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

namespace vates {

void writeCsvSlice(const std::string& path, const Histogram3D& histogram,
                   std::size_t zIndex) {
  VATES_REQUIRE(zIndex < histogram.nz(), "z index out of range");
  std::ofstream stream(path, std::ios::trunc);
  if (!stream) {
    throw IOError("cannot create CSV file: " + path);
  }
  const auto& proj = histogram.projection();
  stream << "# x=" << proj.axisLabel(0) << " [" << histogram.axis(0).min()
         << ',' << histogram.axis(0).max() << ")"
         << " y=" << proj.axisLabel(1) << " [" << histogram.axis(1).min()
         << ',' << histogram.axis(1).max() << ")"
         << " z-slice=" << zIndex << '\n';
  for (std::size_t j = 0; j < histogram.ny(); ++j) {
    for (std::size_t i = 0; i < histogram.nx(); ++i) {
      if (i > 0) {
        stream << ',';
      }
      const double value = histogram.at(i, j, zIndex);
      if (std::isnan(value)) {
        stream << "nan";
      } else {
        stream << value;
      }
    }
    stream << '\n';
  }
  if (!stream) {
    throw IOError("write failure on CSV file: " + path);
  }
}

void writePgmSlice(const std::string& path, const Histogram3D& histogram,
                   std::size_t zIndex, bool logScale) {
  VATES_REQUIRE(zIndex < histogram.nz(), "z index out of range");
  const std::size_t nx = histogram.nx();
  const std::size_t ny = histogram.ny();

  // Scan finite range.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double value = histogram.at(i, j, zIndex);
      if (std::isfinite(value)) {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
    }
  }
  if (!(hi > lo)) {
    lo = 0.0;
    hi = 1.0;
  }

  auto tone = [&](double value) -> unsigned char {
    if (!std::isfinite(value)) {
      return 0;
    }
    double normalized;
    if (logScale) {
      const double floor = std::max(lo, hi * 1e-6);
      const double clamped = std::max(value, floor);
      normalized = std::log(clamped / floor) / std::log(hi / floor);
    } else {
      normalized = (value - lo) / (hi - lo);
    }
    normalized = std::clamp(normalized, 0.0, 1.0);
    return static_cast<unsigned char>(std::lround(normalized * 255.0));
  };

  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) {
    throw IOError("cannot create PGM file: " + path);
  }
  stream << "P5\n" << nx << ' ' << ny << "\n255\n";
  std::vector<unsigned char> row(nx);
  for (std::size_t j = 0; j < ny; ++j) {
    // Flip vertically so increasing y renders upward like the paper's plots.
    const std::size_t jj = ny - 1 - j;
    for (std::size_t i = 0; i < nx; ++i) {
      row[i] = tone(histogram.at(i, jj, zIndex));
    }
    stream.write(reinterpret_cast<const char*>(row.data()),
                 static_cast<std::streamsize>(row.size()));
  }
  if (!stream) {
    throw IOError("write failure on PGM file: " + path);
  }
}

SliceStats computeSliceStats(const Histogram3D& histogram, std::size_t zIndex) {
  VATES_REQUIRE(zIndex < histogram.nz(), "z index out of range");
  SliceStats stats;
  stats.minValue = std::numeric_limits<double>::infinity();
  stats.maxValue = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (std::size_t j = 0; j < histogram.ny(); ++j) {
    for (std::size_t i = 0; i < histogram.nx(); ++i) {
      const double value = histogram.at(i, j, zIndex);
      if (std::isfinite(value)) {
        ++stats.coveredBins;
        stats.minValue = std::min(stats.minValue, value);
        stats.maxValue = std::max(stats.maxValue, value);
        sum += value;
      } else {
        ++stats.emptyBins;
      }
    }
  }
  if (stats.coveredBins == 0) {
    stats.minValue = stats.maxValue = 0.0;
  } else {
    stats.meanValue = sum / static_cast<double>(stats.coveredBins);
  }
  return stats;
}

} // namespace vates
