#include "vates/io/nxlite.hpp"

#include "vates/io/crc32.hpp"
#include "vates/support/error.hpp"

#include <cstring>

namespace vates::nx {

namespace {
constexpr char kMagic[8] = {'N', 'X', 'L', 'I', 'T', 'E', '0', '1'};
constexpr std::uint8_t kMaxRank = 4;

template <typename T>
void writePod(std::ofstream& stream, const T& value) {
  stream.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T readPod(std::ifstream& stream, const std::string& path) {
  T value{};
  stream.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!stream) {
    throw IOError("truncated nxlite file: " + path);
  }
  return value;
}
} // namespace

std::size_t dtypeSize(DType dtype) noexcept {
  switch (dtype) {
  case DType::Float64: return 8;
  case DType::UInt64:  return 8;
  case DType::UInt32:  return 4;
  }
  return 0;
}

std::uint64_t DatasetInfo::elements() const noexcept {
  std::uint64_t product = 1;
  for (std::uint64_t dim : shape) {
    product *= dim;
  }
  return product;
}

// ---------------------------------------------------------------------------
// Writer

Writer::Writer(const std::string& path)
    : stream_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!stream_) {
    throw IOError("cannot create nxlite file: " + path);
  }
  stream_.write(kMagic, sizeof(kMagic));
  writePod(stream_, count_); // patched by close()
}

Writer::~Writer() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a failed close leaves a file that the
    // Reader will reject via its magic/count validation.
  }
}

void Writer::writeRaw(const std::string& name, DType dtype, const void* data,
                      std::size_t bytes, std::vector<std::uint64_t> shape,
                      std::uint64_t elements) {
  VATES_REQUIRE(!closed_, "write after close on nxlite file " + path_);
  VATES_REQUIRE(!name.empty() && name.size() <= 0xFFFF,
                "dataset name must be 1..65535 bytes");
  if (shape.empty()) {
    shape = {elements};
  }
  VATES_REQUIRE(shape.size() <= kMaxRank, "dataset rank must be <= 4");
  std::uint64_t shapeElements = 1;
  for (std::uint64_t dim : shape) {
    shapeElements *= dim;
  }
  VATES_REQUIRE(shapeElements == elements,
                "shape does not match the data size for dataset " + name);

  const auto nameLength = static_cast<std::uint16_t>(name.size());
  writePod(stream_, nameLength);
  stream_.write(name.data(), nameLength);
  writePod(stream_, static_cast<std::uint8_t>(dtype));
  writePod(stream_, static_cast<std::uint8_t>(shape.size()));
  for (std::uint64_t dim : shape) {
    writePod(stream_, dim);
  }
  writePod(stream_, static_cast<std::uint64_t>(bytes));
  stream_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  writePod(stream_, crc32(data, bytes));
  if (!stream_) {
    throw IOError("write failure on nxlite file: " + path_);
  }
  ++count_;
}

void Writer::writeFloat64(const std::string& name, std::span<const double> data,
                          std::vector<std::uint64_t> shape) {
  writeRaw(name, DType::Float64, data.data(), data.size_bytes(),
           std::move(shape), data.size());
}

void Writer::writeUInt64(const std::string& name,
                         std::span<const std::uint64_t> data,
                         std::vector<std::uint64_t> shape) {
  writeRaw(name, DType::UInt64, data.data(), data.size_bytes(),
           std::move(shape), data.size());
}

void Writer::writeUInt32(const std::string& name,
                         std::span<const std::uint32_t> data,
                         std::vector<std::uint64_t> shape) {
  writeRaw(name, DType::UInt32, data.data(), data.size_bytes(),
           std::move(shape), data.size());
}

void Writer::writeScalar(const std::string& name, double value) {
  writeFloat64(name, std::span<const double>(&value, 1));
}

void Writer::close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  stream_.seekp(sizeof(kMagic), std::ios::beg);
  writePod(stream_, count_);
  stream_.flush();
  if (!stream_) {
    throw IOError("close failure on nxlite file: " + path_);
  }
  stream_.close();
}

// ---------------------------------------------------------------------------
// Reader

Reader::Reader(const std::string& path)
    : path_(path), stream_(path, std::ios::binary) {
  if (!stream_) {
    throw IOError("cannot open nxlite file: " + path);
  }
  // File size for truncation detection during the directory scan
  // (seekg past EOF does not fail, so extents must be checked).
  stream_.seekg(0, std::ios::end);
  const auto fileSize = static_cast<std::uint64_t>(stream_.tellg());
  stream_.seekg(0, std::ios::beg);

  char magic[sizeof(kMagic)] = {};
  stream_.read(magic, sizeof(magic));
  if (!stream_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw IOError("not an nxlite file (bad magic): " + path);
  }
  const auto count = readPod<std::uint32_t>(stream_, path_);

  for (std::uint32_t i = 0; i < count; ++i) {
    const auto nameLength = readPod<std::uint16_t>(stream_, path_);
    std::string name(nameLength, '\0');
    stream_.read(name.data(), nameLength);
    if (!stream_) {
      throw IOError("truncated nxlite file: " + path_);
    }
    const auto dtypeRaw = readPod<std::uint8_t>(stream_, path_);
    if (dtypeRaw > static_cast<std::uint8_t>(DType::UInt32)) {
      throw IOError("unknown dtype in nxlite file: " + path_);
    }
    const auto rank = readPod<std::uint8_t>(stream_, path_);
    if (rank > kMaxRank) {
      throw IOError("invalid dataset rank in nxlite file: " + path_);
    }
    DatasetInfo info;
    info.name = name;
    info.dtype = static_cast<DType>(dtypeRaw);
    info.shape.resize(rank);
    for (auto& dim : info.shape) {
      dim = readPod<std::uint64_t>(stream_, path_);
    }
    const auto payloadBytes = readPod<std::uint64_t>(stream_, path_);
    if (payloadBytes != info.bytes()) {
      throw IOError("dataset size/shape mismatch in nxlite file: " + path_);
    }
    const std::streampos payloadOffset = stream_.tellg();
    const auto payloadEnd = static_cast<std::uint64_t>(payloadOffset) +
                            payloadBytes + sizeof(std::uint32_t);
    if (payloadEnd > fileSize) {
      throw IOError("truncated nxlite file: " + path_);
    }
    stream_.seekg(static_cast<std::streamoff>(payloadBytes) +
                      static_cast<std::streamoff>(sizeof(std::uint32_t)),
                  std::ios::cur);
    if (!stream_) {
      throw IOError("truncated nxlite file: " + path_);
    }
    if (entries_.contains(name)) {
      throw IOError("duplicate dataset '" + name + "' in " + path_);
    }
    entries_.emplace(name, Entry{info, payloadOffset});
    infos_.push_back(std::move(info));
  }
}

bool Reader::has(const std::string& name) const noexcept {
  return entries_.contains(name);
}

const DatasetInfo& Reader::info(const std::string& name) const {
  return entry(name).info;
}

const Reader::Entry& Reader::entry(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw IOError("dataset '" + name + "' not found in " + path_);
  }
  return it->second;
}

void Reader::readPayload(const Entry& e, void* destination, std::size_t bytes) {
  stream_.clear();
  stream_.seekg(e.payloadOffset);
  stream_.read(static_cast<char*>(destination),
               static_cast<std::streamsize>(bytes));
  if (!stream_) {
    throw IOError("truncated dataset '" + e.info.name + "' in " + path_);
  }
  const auto storedCrc = readPod<std::uint32_t>(stream_, path_);
  const std::uint32_t actualCrc = crc32(destination, bytes);
  if (storedCrc != actualCrc) {
    throw IOError("CRC mismatch for dataset '" + e.info.name + "' in " +
                  path_ + " (file is corrupt)");
  }
}

std::vector<double> Reader::readFloat64(const std::string& name) {
  const Entry& e = entry(name);
  if (e.info.dtype != DType::Float64) {
    throw IOError("dataset '" + name + "' is not Float64 in " + path_);
  }
  std::vector<double> data(e.info.elements());
  readPayload(e, data.data(), data.size() * sizeof(double));
  return data;
}

std::vector<std::uint64_t> Reader::readUInt64(const std::string& name) {
  const Entry& e = entry(name);
  if (e.info.dtype != DType::UInt64) {
    throw IOError("dataset '" + name + "' is not UInt64 in " + path_);
  }
  std::vector<std::uint64_t> data(e.info.elements());
  readPayload(e, data.data(), data.size() * sizeof(std::uint64_t));
  return data;
}

std::vector<std::uint32_t> Reader::readUInt32(const std::string& name) {
  const Entry& e = entry(name);
  if (e.info.dtype != DType::UInt32) {
    throw IOError("dataset '" + name + "' is not UInt32 in " + path_);
  }
  std::vector<std::uint32_t> data(e.info.elements());
  readPayload(e, data.data(), data.size() * sizeof(std::uint32_t));
  return data;
}

double Reader::readScalar(const std::string& name) {
  const auto data = readFloat64(name);
  if (data.size() != 1) {
    throw IOError("dataset '" + name + "' is not a scalar in " + path_);
  }
  return data[0];
}

} // namespace vates::nx
