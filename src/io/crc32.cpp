#include "vates/io/crc32.hpp"

#include <array>
#include <cstring>

namespace vates {

namespace {

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
/// table[k][b] is the CRC of byte b followed by k zero bytes.  Eight
/// bytes are then folded per step with independent lookups, which
/// pipelines far better than the serial one-byte recurrence (~5-8x on
/// the multi-megabyte histogram datasets the cache reads back).
std::array<std::array<std::uint32_t, 256>, 8> buildTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value & 1u) ? (0xEDB88320u ^ (value >> 1)) : (value >> 1);
    }
    tables[0][i] = value;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = tables[0][i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      value = tables[0][value & 0xFFu] ^ (value >> 8);
      tables[slice][i] = value;
    }
  }
  return tables;
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      buildTables();
  const auto* bytePointer = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;

  // Lead-in: align the hot loop to whole 8-byte groups.
  while (bytes != 0 &&
         (reinterpret_cast<std::uintptr_t>(bytePointer) & 7u) != 0) {
    crc = tables[0][(crc ^ *bytePointer++) & 0xFFu] ^ (crc >> 8);
    --bytes;
  }

  while (bytes >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, bytePointer, sizeof(chunk));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    chunk = __builtin_bswap64(chunk);
#endif
    chunk ^= crc;
    crc = tables[7][chunk & 0xFFu] ^
          tables[6][(chunk >> 8) & 0xFFu] ^
          tables[5][(chunk >> 16) & 0xFFu] ^
          tables[4][(chunk >> 24) & 0xFFu] ^
          tables[3][(chunk >> 32) & 0xFFu] ^
          tables[2][(chunk >> 40) & 0xFFu] ^
          tables[1][(chunk >> 48) & 0xFFu] ^
          tables[0][(chunk >> 56) & 0xFFu];
    bytePointer += 8;
    bytes -= 8;
  }

  while (bytes-- != 0) {
    crc = tables[0][(crc ^ *bytePointer++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

} // namespace vates
