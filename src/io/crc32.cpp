#include "vates/io/crc32.hpp"

#include <array>

namespace vates {

namespace {
std::array<std::uint32_t, 256> buildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value & 1u) ? (0xEDB88320u ^ (value >> 1)) : (value >> 1);
    }
    table[i] = value;
  }
  return table;
}
} // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = buildTable();
  const auto* bytePointer = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ bytePointer[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

} // namespace vates
