#include "vates/stream/event_channel.hpp"

#include "vates/support/error.hpp"

#include <algorithm>

namespace vates::stream {

EventChannel::EventChannel(std::size_t capacity) : capacity_(capacity) {
  VATES_REQUIRE(capacity >= 1, "channel capacity must be >= 1");
}

void EventChannel::push(PulsePacket packet) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.size() >= capacity_ && !closed_) {
    ++stats_.producerBlocked;
    notFull_.wait(lock,
                  [this] { return queue_.size() < capacity_ || closed_; });
  }
  if (closed_) {
    throw InvalidArgument("push on a closed event channel");
  }
  queue_.push_back(std::move(packet));
  ++stats_.pushed;
  stats_.maxDepth = std::max(stats_.maxDepth, queue_.size());
  lock.unlock();
  notEmpty_.notify_one();
}

std::optional<PulsePacket> EventChannel::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  notEmpty_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) {
    return std::nullopt; // closed and drained
  }
  PulsePacket packet = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.popped;
  lock.unlock();
  notFull_.notify_one();
  return packet;
}

void EventChannel::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  notFull_.notify_all();
  notEmpty_.notify_all();
}

bool EventChannel::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t EventChannel::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ChannelStats EventChannel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

} // namespace vates::stream
