#include "vates/stream/event_channel.hpp"

#include "vates/support/error.hpp"

#include <algorithm>

namespace vates::stream {

std::size_t packetPayloadBytes(const PulsePacket& packet) noexcept {
  // SoA columns: u32 id + f64 tof + u32 pulse + f64 weight per event,
  // plus the packet struct itself.
  return sizeof(PulsePacket) +
         packet.events.size() * (2 * sizeof(std::uint32_t) +
                                 2 * sizeof(double));
}

EventChannel::EventChannel(std::size_t capacity, std::size_t byteCapacity)
    : capacity_(capacity), byteCapacity_(byteCapacity) {
  VATES_REQUIRE(capacity >= 1, "channel capacity must be >= 1");
}

bool EventChannel::hasSpace(std::size_t packetBytes) const {
  if (queue_.size() >= capacity_) {
    return false;
  }
  if (byteCapacity_ != 0 && !queue_.empty() &&
      queuedBytes_ + packetBytes > byteCapacity_) {
    // A packet bigger than the whole budget still passes once the
    // queue drains empty; otherwise it could never be admitted.
    return false;
  }
  return true;
}

void EventChannel::enqueueLocked(PulsePacket&& packet,
                                 std::size_t packetBytes) {
  queue_.push_back(std::move(packet));
  queuedBytes_ += packetBytes;
  ++stats_.pushed;
  stats_.maxDepth = std::max(stats_.maxDepth, queue_.size());
  stats_.maxBytes = std::max(stats_.maxBytes, queuedBytes_);
}

void EventChannel::push(PulsePacket packet) {
  const std::size_t packetBytes = packetPayloadBytes(packet);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!hasSpace(packetBytes) && !closed_) {
    ++stats_.producerBlocked;
    if (queue_.size() < capacity_) {
      ++stats_.producerBlockedOnBytes;
    }
    notFull_.wait(lock,
                  [&] { return hasSpace(packetBytes) || closed_; });
  }
  if (closed_) {
    throw InvalidArgument("push on a closed event channel");
  }
  enqueueLocked(std::move(packet), packetBytes);
  lock.unlock();
  notEmpty_.notify_one();
}

bool EventChannel::tryPushFor(PulsePacket& packet,
                              std::chrono::milliseconds timeout) {
  const std::size_t packetBytes = packetPayloadBytes(packet);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!hasSpace(packetBytes) && !closed_) {
    ++stats_.producerBlocked;
    if (queue_.size() < capacity_) {
      ++stats_.producerBlockedOnBytes;
    }
    if (!notFull_.wait_for(lock, timeout, [&] {
          return hasSpace(packetBytes) || closed_;
        })) {
      return false; // timed out; the caller keeps the packet
    }
  }
  if (closed_) {
    throw InvalidArgument("push on a closed event channel");
  }
  enqueueLocked(std::move(packet), packetBytes);
  lock.unlock();
  notEmpty_.notify_one();
  return true;
}

std::optional<PulsePacket> EventChannel::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  notEmpty_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) {
    return std::nullopt; // closed and drained
  }
  PulsePacket packet = std::move(queue_.front());
  queue_.pop_front();
  queuedBytes_ -= std::min(queuedBytes_, packetPayloadBytes(packet));
  ++stats_.popped;
  lock.unlock();
  // With a byte bound, freed bytes may admit a *different* waiter than
  // the one notify_one would pick — wake them all and let the
  // predicates sort it out.
  if (byteCapacity_ != 0) {
    notFull_.notify_all();
  } else {
    notFull_.notify_one();
  }
  return packet;
}

void EventChannel::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  notFull_.notify_all();
  notEmpty_.notify_all();
}

bool EventChannel::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t EventChannel::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t EventChannel::depthBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queuedBytes_;
}

ChannelStats EventChannel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

} // namespace vates::stream
