#include "vates/stream/daq_simulator.hpp"

#include "vates/support/error.hpp"

namespace vates::stream {

DaqSimulator::DaqSimulator(const EventGenerator& generator)
    : generator_(&generator) {}

DaqStats DaqSimulator::streamRuns(EventChannel& channel, std::size_t firstRun,
                                  std::size_t lastRun) const {
  VATES_REQUIRE(firstRun <= lastRun, "invalid run range");
  DaqStats stats;
  for (std::size_t runIndex = firstRun; runIndex < lastRun; ++runIndex) {
    const RawEventList raw = generator_->generateRaw(runIndex);
    // Slice the run into per-pulse packets (pulse indices are
    // non-decreasing by construction).
    std::size_t begin = 0;
    while (begin < raw.size()) {
      const std::uint32_t pulse = raw.pulseIndex(begin);
      std::size_t end = begin;
      while (end < raw.size() && raw.pulseIndex(end) == pulse) {
        ++end;
      }
      PulsePacket packet;
      packet.runIndex = static_cast<std::uint32_t>(runIndex);
      packet.pulseIndex = pulse;
      packet.endOfRun = end == raw.size();
      packet.events.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        packet.events.append(raw.detectorId(i), raw.tof(i), raw.pulseIndex(i),
                             raw.weight(i));
      }
      stats.eventsEmitted += packet.events.size();
      ++stats.pulsesEmitted;
      channel.push(std::move(packet));
      begin = end;
    }
    if (raw.empty()) {
      // Empty run: still announce its end so consumers stay in sync.
      PulsePacket packet;
      packet.runIndex = static_cast<std::uint32_t>(runIndex);
      packet.endOfRun = true;
      ++stats.pulsesEmitted;
      channel.push(std::move(packet));
    }
    ++stats.runsEmitted;
  }
  return stats;
}

DaqStats DaqSimulator::streamAllAndClose(EventChannel& channel) const {
  const DaqStats stats =
      streamRuns(channel, 0, generator_->spec().nFiles);
  channel.close();
  return stats;
}

} // namespace vates::stream
