#include "vates/stream/daq_simulator.hpp"

#include "vates/support/error.hpp"

#include <chrono>

namespace vates::stream {

DaqSimulator::DaqSimulator(const EventGenerator& generator)
    : generator_(&generator) {}

void DaqSimulator::requestStop() noexcept {
  stopRequested_.store(true, std::memory_order_relaxed);
}

DaqStats DaqSimulator::streamRuns(EventChannel& channel, std::size_t firstRun,
                                  std::size_t lastRun) {
  VATES_REQUIRE(firstRun <= lastRun, "invalid run range");
  stopRequested_.store(false, std::memory_order_relaxed);
  DaqStats stats;
  // Push with a bounded wait so a requestStop() is observed even while
  // the channel exerts backpressure; the packet survives timeouts.
  const auto pushCooperatively = [&](PulsePacket&& packet) {
    while (!channel.tryPushFor(packet, std::chrono::milliseconds(10))) {
      if (stopRequested_.load(std::memory_order_relaxed)) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t runIndex = firstRun; runIndex < lastRun; ++runIndex) {
    if (stopRequested_.load(std::memory_order_relaxed)) {
      stats.stopped = true;
      return stats;
    }
    const RawEventList raw = generator_->generateRaw(runIndex);
    // Slice the run into per-pulse packets (pulse indices are
    // non-decreasing by construction).
    std::size_t begin = 0;
    while (begin < raw.size()) {
      const std::uint32_t pulse = raw.pulseIndex(begin);
      std::size_t end = begin;
      while (end < raw.size() && raw.pulseIndex(end) == pulse) {
        ++end;
      }
      PulsePacket packet;
      packet.runIndex = static_cast<std::uint32_t>(runIndex);
      packet.pulseIndex = pulse;
      packet.endOfRun = end == raw.size();
      packet.events.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        packet.events.append(raw.detectorId(i), raw.tof(i), raw.pulseIndex(i),
                             raw.weight(i));
      }
      const std::uint64_t packetEvents = packet.events.size();
      if (!pushCooperatively(std::move(packet))) {
        stats.stopped = true;
        return stats;
      }
      stats.eventsEmitted += packetEvents;
      ++stats.pulsesEmitted;
      begin = end;
    }
    if (raw.empty()) {
      // Empty run: still announce its end so consumers stay in sync.
      PulsePacket packet;
      packet.runIndex = static_cast<std::uint32_t>(runIndex);
      packet.endOfRun = true;
      if (!pushCooperatively(std::move(packet))) {
        stats.stopped = true;
        return stats;
      }
      ++stats.pulsesEmitted;
    }
    ++stats.runsEmitted;
  }
  return stats;
}

DaqStats DaqSimulator::streamAllAndClose(EventChannel& channel) {
  const DaqStats stats =
      streamRuns(channel, 0, generator_->spec().nFiles);
  channel.close();
  return stats;
}

} // namespace vates::stream
