#pragma once
/// \file event_channel.hpp
/// Bounded pulse-packet channel — the transport of a live-streaming
/// reduction.
///
/// ORNL's ADARA system (paper related work, Shipman et al.) streams
/// event packets from the DAQ into Mantid for live analysis.  This
/// channel models that link in-process: a producer (DaqSimulator)
/// pushes per-pulse packets, a consumer (LiveReducer) pops them, and a
/// bounded capacity provides the backpressure a real translation
/// service applies when analysis falls behind acquisition.

#include "vates/events/raw_events.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace vates::stream {

/// One accelerator pulse's worth of raw events.
struct PulsePacket {
  std::uint32_t runIndex = 0;
  std::uint32_t pulseIndex = 0;
  RawEventList events;
  bool endOfRun = false; ///< last packet of its run
  /// The run this packet belongs to is known to be incomplete (the
  /// transport dropped frames): consumers must discard whatever they
  /// have buffered for it instead of reducing a hole-ridden run.  Such
  /// packets carry no events.
  bool abortRun = false;
};

/// Approximate in-memory footprint of a packet's event payload — the
/// unit of the channel's byte bound.
std::size_t packetPayloadBytes(const PulsePacket& packet) noexcept;

/// Channel statistics (cumulative).
struct ChannelStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t producerBlocked = 0; ///< pushes that had to wait (backpressure)
  /// Pushes that had to wait specifically for the byte bound (a burst
  /// of giant pulses) rather than the packet-count bound.
  std::uint64_t producerBlockedOnBytes = 0;
  std::size_t maxDepth = 0;
  std::size_t maxBytes = 0; ///< high-water mark of queued payload bytes
};

/// Bounded blocking FIFO of pulse packets.  Thread-safe for any number
/// of producers and consumers (the simulated beamline uses one of each).
///
/// Two bounds apply: a packet-count capacity and an optional payload
/// *byte* capacity, so a burst of giant pulses cannot blow memory while
/// the consumer is busy.  A packet larger than the whole byte budget is
/// still admitted once the queue is empty (the bound degrades to
/// one-packet-at-a-time instead of deadlocking).
class EventChannel {
public:
  /// \p capacity >= 1 packets in flight; \p byteCapacity bounds the
  /// queued payload bytes (0: unbounded).
  explicit EventChannel(std::size_t capacity, std::size_t byteCapacity = 0);

  /// Block until space is available, then enqueue.  Throws
  /// InvalidArgument if the channel is closed.
  void push(PulsePacket packet);

  /// push() with a bounded wait: if no space opens within \p timeout
  /// the packet is returned untouched and the call yields false.
  /// Throws InvalidArgument if the channel is closed — same contract as
  /// push().  Producers with a stop token poll it between attempts.
  bool tryPushFor(PulsePacket& packet, std::chrono::milliseconds timeout);

  /// Block until a packet arrives; returns nullopt once the channel is
  /// closed *and* drained.
  std::optional<PulsePacket> pop();

  /// No more pushes; consumers drain the remaining packets then see
  /// nullopt.  Idempotent.
  void close();

  bool closed() const;
  std::size_t depth() const;
  /// Queued payload bytes right now.
  std::size_t depthBytes() const;
  ChannelStats stats() const;

private:
  /// Space check under mutex_: count bound, then byte bound.
  bool hasSpace(std::size_t packetBytes) const;
  void enqueueLocked(PulsePacket&& packet, std::size_t packetBytes);

  const std::size_t capacity_;
  const std::size_t byteCapacity_;
  mutable std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<PulsePacket> queue_;
  std::size_t queuedBytes_ = 0;
  ChannelStats stats_;
  bool closed_ = false;
};

} // namespace vates::stream
