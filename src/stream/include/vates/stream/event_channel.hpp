#pragma once
/// \file event_channel.hpp
/// Bounded pulse-packet channel — the transport of a live-streaming
/// reduction.
///
/// ORNL's ADARA system (paper related work, Shipman et al.) streams
/// event packets from the DAQ into Mantid for live analysis.  This
/// channel models that link in-process: a producer (DaqSimulator)
/// pushes per-pulse packets, a consumer (LiveReducer) pops them, and a
/// bounded capacity provides the backpressure a real translation
/// service applies when analysis falls behind acquisition.

#include "vates/events/raw_events.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace vates::stream {

/// One accelerator pulse's worth of raw events.
struct PulsePacket {
  std::uint32_t runIndex = 0;
  std::uint32_t pulseIndex = 0;
  RawEventList events;
  bool endOfRun = false; ///< last packet of its run
};

/// Channel statistics (cumulative).
struct ChannelStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t producerBlocked = 0; ///< pushes that had to wait (backpressure)
  std::size_t maxDepth = 0;
};

/// Bounded blocking FIFO of pulse packets.  Thread-safe for any number
/// of producers and consumers (the simulated beamline uses one of each).
class EventChannel {
public:
  /// \p capacity >= 1 packets in flight.
  explicit EventChannel(std::size_t capacity);

  /// Block until space is available, then enqueue.  Throws
  /// InvalidArgument if the channel is closed.
  void push(PulsePacket packet);

  /// Block until a packet arrives; returns nullopt once the channel is
  /// closed *and* drained.
  std::optional<PulsePacket> pop();

  /// No more pushes; consumers drain the remaining packets then see
  /// nullopt.  Idempotent.
  void close();

  bool closed() const;
  std::size_t depth() const;
  ChannelStats stats() const;

private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<PulsePacket> queue_;
  ChannelStats stats_;
  bool closed_ = false;
};

} // namespace vates::stream
