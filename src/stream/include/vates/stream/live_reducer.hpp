#pragma once
/// \file live_reducer.hpp
/// Live consumer: accumulates streamed pulses, reduces each run as it
/// completes, and exposes a thread-safe snapshot of the evolving
/// cross-section — the "real-time experiment analysis and steering"
/// capability of ADARA (paper related work) on this codebase's kernels.

#include "vates/events/experiment_setup.hpp"
#include "vates/kernels/convert_to_md.hpp"
#include "vates/stream/event_channel.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>

namespace vates::stream {

struct LiveStats {
  std::uint64_t pulsesConsumed = 0;
  std::uint64_t eventsConsumed = 0;
  std::uint64_t runsReduced = 0;
  /// Partially buffered runs discarded on an abortRun packet (the
  /// transport dropped frames mid-run) — never folded into the state.
  std::uint64_t runsDropped = 0;
};

/// A snapshot of the live state (copies; safe to inspect while the
/// reducer keeps consuming).
struct LiveSnapshot {
  Histogram3D signal;
  Histogram3D normalization;
  Histogram3D crossSection;
  LiveStats stats;
  double coverage = 0.0; ///< fraction of slice bins with data
};

class LiveReducer {
public:
  /// Borrow the setup (must outlive the reducer).
  LiveReducer(const ExperimentSetup& setup, const Executor& executor,
              ConvertOptions convert = {});

  /// Consume packets until the channel closes and drains, or until
  /// requestStop() is observed.  Each run is reduced (ConvertToMD +
  /// MDNorm + BinMD) when its endOfRun packet arrives.  Callable from a
  /// dedicated consumer thread.
  LiveStats consume(EventChannel& channel);

  /// Cooperative cancellation: ask a concurrently running consume() to
  /// return after the packet it is currently processing.  Runs already
  /// folded into the accumulated state stay; the partially buffered run
  /// is discarded.  Thread-safe; sticky until the next consume() call.
  void requestStop() noexcept;

  /// Thread-safe copy of the current accumulated state.
  LiveSnapshot snapshot() const;

private:
  void reduceCompletedRun(std::uint32_t runIndex, const RawEventList& events);

  const ExperimentSetup* setup_;
  Executor executor_;
  ConvertOptions convert_;

  mutable std::mutex mutex_;
  Histogram3D signal_;
  Histogram3D normalization_;
  LiveStats stats_;
  std::atomic<bool> stopRequested_{false};

  // Per-run staging of not-yet-complete pulse streams.
  RawEventList pending_;
  std::uint32_t pendingRun_ = 0;
  bool hasPending_ = false;
};

} // namespace vates::stream
