#pragma once
/// \file daq_simulator.hpp
/// Simulated data-acquisition front end: replays a workload's runs as a
/// stream of per-pulse packets, the way the SNS DAQ emits event data at
/// 60 Hz.

#include "vates/events/generator.hpp"
#include "vates/stream/event_channel.hpp"

#include <atomic>
#include <cstdint>

namespace vates::stream {

struct DaqStats {
  std::uint64_t pulsesEmitted = 0;
  std::uint64_t eventsEmitted = 0;
  std::uint64_t runsEmitted = 0;
  bool stopped = false; ///< a requestStop() cut the stream short
};

/// Replays generator runs into a channel.  Packets within a run are
/// grouped by the raw events' pulse indices (which generateRaw emits in
/// non-decreasing order); the last packet of each run carries
/// endOfRun = true.
class DaqSimulator {
public:
  /// Borrow the generator (must outlive the simulator).
  explicit DaqSimulator(const EventGenerator& generator);

  /// Stream runs [firstRun, lastRun) into \p channel, blocking on
  /// backpressure.  Does not close the channel (callers may chain
  /// several simulators); returns emission statistics.
  DaqStats streamRuns(EventChannel& channel, std::size_t firstRun,
                      std::size_t lastRun);

  /// Convenience: stream every run of the workload, then close.
  DaqStats streamAllAndClose(EventChannel& channel);

  /// Cooperative cancellation, mirroring LiveReducer::requestStop():
  /// ask a concurrently running streamRuns() to return after the packet
  /// it is currently pushing — including while *blocked* on channel
  /// backpressure, which it waits out in bounded slices so the token is
  /// observed within ~10 ms.  Thread-safe; sticky until the next
  /// streamRuns() call.
  void requestStop() noexcept;

private:
  const EventGenerator* generator_;
  std::atomic<bool> stopRequested_{false};
};

} // namespace vates::stream
