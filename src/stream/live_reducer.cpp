#include "vates/stream/live_reducer.hpp"

#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/support/error.hpp"

#include <cmath>

namespace vates::stream {

LiveReducer::LiveReducer(const ExperimentSetup& setup, const Executor& executor,
                         ConvertOptions convert)
    : setup_(&setup), executor_(executor), convert_(convert),
      signal_(setup.makeHistogram()), normalization_(setup.makeHistogram()) {}

void LiveReducer::reduceCompletedRun(std::uint32_t runIndex,
                                     const RawEventList& events) {
  const ExperimentSetup& setup = *setup_;
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(runIndex);

  EventTable converted = convertToMD(executor_, setup.instrument(), nullptr,
                                     run, events, convert_);

  const auto normTransforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);
  MDNormInputs normInputs;
  normInputs.transforms = normTransforms;
  normInputs.qLabDirections = setup.instrument().qLabDirections();
  normInputs.solidAngles = setup.instrument().solidAngles();
  normInputs.flux = setup.flux().view();
  normInputs.protonCharge = run.protonCharge;
  normInputs.kMin = run.kMin;
  normInputs.kMax = run.kMax;

  const auto binTransforms = binMdTransforms(
      setup.projection(), setup.lattice(), setup.symmetryMatrices());
  BinMDInputs binInputs;
  binInputs.transforms = binTransforms;
  binInputs.qx = converted.column(EventTable::Qx).data();
  binInputs.qy = converted.column(EventTable::Qy).data();
  binInputs.qz = converted.column(EventTable::Qz).data();
  binInputs.signal = converted.column(EventTable::Signal).data();
  binInputs.nEvents = converted.size();

  // Accumulate under the snapshot lock: the reduction itself is the
  // slow part, but snapshots copy whole histograms, so simplicity wins
  // over fine-grained locking here.
  std::lock_guard<std::mutex> lock(mutex_);
  runMDNorm(executor_, normInputs, normalization_.gridView());
  runBinMD(executor_, binInputs, signal_.gridView());
  ++stats_.runsReduced;
}

LiveStats LiveReducer::consume(EventChannel& channel) {
  stopRequested_.store(false, std::memory_order_relaxed);
  hasPending_ = false;
  for (;;) {
    if (stopRequested_.load(std::memory_order_relaxed)) {
      hasPending_ = false; // discard the partially buffered run
      break;
    }
    std::optional<PulsePacket> packet = channel.pop();
    if (!packet) {
      break; // closed and drained
    }
    if (packet->abortRun) {
      // The transport lost part of this run; reducing the remainder
      // would bake a hole into the accumulated state.
      std::lock_guard<std::mutex> lock(mutex_);
      if (hasPending_) {
        hasPending_ = false;
        ++stats_.runsDropped;
      }
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.pulsesConsumed;
      stats_.eventsConsumed += packet->events.size();
    }
    if (!hasPending_) {
      pendingRun_ = packet->runIndex;
      pending_.clear();
      hasPending_ = true;
    }
    VATES_REQUIRE(packet->runIndex == pendingRun_,
                  "interleaved runs are not supported by this consumer");
    for (std::size_t i = 0; i < packet->events.size(); ++i) {
      pending_.append(packet->events.detectorId(i), packet->events.tof(i),
                      packet->events.pulseIndex(i), packet->events.weight(i));
    }
    if (packet->endOfRun) {
      reduceCompletedRun(pendingRun_, pending_);
      hasPending_ = false;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void LiveReducer::requestStop() noexcept {
  stopRequested_.store(true, std::memory_order_relaxed);
}

LiveSnapshot LiveReducer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LiveSnapshot snapshot{signal_, normalization_,
                        Histogram3D::divide(signal_, normalization_), stats_,
                        0.0};
  const std::size_t covered = snapshot.crossSection.size() -
                              [&] {
                                std::size_t nan = 0;
                                for (double v : snapshot.crossSection.data()) {
                                  if (std::isnan(v)) {
                                    ++nan;
                                  }
                                }
                                return nan;
                              }();
  snapshot.coverage = snapshot.crossSection.size() == 0
                          ? 0.0
                          : static_cast<double>(covered) /
                                static_cast<double>(snapshot.crossSection.size());
  return snapshot;
}

} // namespace vates::stream
