#include "vates/support/error.hpp"

#include <sstream>

namespace vates::detail {

void throwRequire(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw InvalidArgument(os.str());
}

} // namespace vates::detail
