#include "vates/support/inifile.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <fstream>
#include <sstream>

namespace vates {

IniFile IniFile::parse(const std::string& text) {
  IniFile ini;
  std::istringstream stream(text);
  std::string line;
  std::string currentSection;
  int lineNumber = 0;
  while (std::getline(stream, line)) {
    ++lineNumber;
    // Strip comments (full-line or trailing) outside of values' spirit:
    // '#' and ';' start a comment.
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw InvalidArgument("ini parse error at line " +
                              std::to_string(lineNumber) +
                              ": malformed section header '" + line + "'");
      }
      currentSection = trim(line.substr(1, line.size() - 2));
      if (currentSection.empty()) {
        throw InvalidArgument("ini parse error at line " +
                              std::to_string(lineNumber) +
                              ": empty section name");
      }
      // Register the section even if it stays empty.
      if (!ini.sections_.contains(currentSection)) {
        ini.sections_[currentSection] = Section{};
        ini.sectionOrder_.push_back(currentSection);
      }
      continue;
    }
    const std::size_t equals = line.find('=');
    if (equals == std::string::npos) {
      throw InvalidArgument("ini parse error at line " +
                            std::to_string(lineNumber) +
                            ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, equals));
    const std::string value = trim(line.substr(equals + 1));
    if (key.empty()) {
      throw InvalidArgument("ini parse error at line " +
                            std::to_string(lineNumber) + ": empty key");
    }
    ini.set(currentSection, key, value);
  }
  return ini;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw IOError("cannot open ini file: " + path);
  }
  std::ostringstream text;
  text << stream.rdbuf();
  return parse(text.str());
}

void IniFile::set(const std::string& section, const std::string& key,
                  const std::string& value) {
  auto [sectionIt, sectionInserted] = sections_.try_emplace(section);
  if (sectionInserted) {
    sectionOrder_.push_back(section);
  }
  auto [keyIt, keyInserted] = sectionIt->second.values.try_emplace(key, value);
  if (keyInserted) {
    sectionIt->second.keyOrder.push_back(key);
  } else {
    keyIt->second = value; // later assignments win
  }
}

const std::string* IniFile::find(const std::string& section,
                                 const std::string& key) const {
  const auto sectionIt = sections_.find(section);
  if (sectionIt == sections_.end()) {
    return nullptr;
  }
  const auto keyIt = sectionIt->second.values.find(key);
  return keyIt == sectionIt->second.values.end() ? nullptr : &keyIt->second;
}

bool IniFile::has(const std::string& section, const std::string& key) const {
  return find(section, key) != nullptr;
}

std::string IniFile::getString(const std::string& section,
                               const std::string& key) const {
  const std::string* value = find(section, key);
  if (value == nullptr) {
    throw InvalidArgument("missing ini key [" + section + "] " + key);
  }
  return *value;
}

std::string IniFile::getString(const std::string& section,
                               const std::string& key,
                               const std::string& fallback) const {
  const std::string* value = find(section, key);
  return value == nullptr ? fallback : *value;
}

double IniFile::getDouble(const std::string& section,
                          const std::string& key) const {
  const std::string text = getString(section, key);
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(text, &pos);
    if (pos != text.size()) {
      throw std::invalid_argument(text);
    }
    return parsed;
  } catch (const std::exception&) {
    throw InvalidArgument("ini key [" + section + "] " + key + " = '" + text +
                          "' is not a number");
  }
}

double IniFile::getDouble(const std::string& section, const std::string& key,
                          double fallback) const {
  return has(section, key) ? getDouble(section, key) : fallback;
}

long long IniFile::getInt(const std::string& section,
                          const std::string& key) const {
  const std::string text = getString(section, key);
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(text, &pos);
    if (pos != text.size()) {
      throw std::invalid_argument(text);
    }
    return parsed;
  } catch (const std::exception&) {
    throw InvalidArgument("ini key [" + section + "] " + key + " = '" + text +
                          "' is not an integer");
  }
}

long long IniFile::getInt(const std::string& section, const std::string& key,
                          long long fallback) const {
  return has(section, key) ? getInt(section, key) : fallback;
}

bool IniFile::getBool(const std::string& section, const std::string& key,
                      bool fallback) const {
  if (!has(section, key)) {
    return fallback;
  }
  const std::string value = toLower(getString(section, key));
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  throw InvalidArgument("ini key [" + section + "] " + key + " = '" + value +
                        "' is not a boolean");
}

std::vector<std::string> IniFile::sections() const { return sectionOrder_; }

std::vector<std::string> IniFile::keys(const std::string& section) const {
  const auto it = sections_.find(section);
  return it == sections_.end() ? std::vector<std::string>{}
                               : it->second.keyOrder;
}

std::string IniFile::serialize() const {
  std::ostringstream os;
  for (const std::string& sectionName : sectionOrder_) {
    const Section& section = sections_.at(sectionName);
    if (!sectionName.empty()) {
      os << '[' << sectionName << "]\n";
    }
    for (const std::string& key : section.keyOrder) {
      os << key << " = " << section.values.at(key) << '\n';
    }
    os << '\n';
  }
  return os.str();
}

void IniFile::save(const std::string& path) const {
  std::ofstream stream(path, std::ios::trunc);
  if (!stream) {
    throw IOError("cannot create ini file: " + path);
  }
  stream << serialize();
  if (!stream) {
    throw IOError("write failure on ini file: " + path);
  }
}

} // namespace vates
