#include "vates/support/cli.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace vates {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::addOption(const std::string& name, const std::string& help,
                          const std::string& defaultValue) {
  VATES_REQUIRE(!options_.contains(name), "duplicate option --" + name);
  options_[name] = Option{help, defaultValue, /*isFlag=*/false, false};
  declarationOrder_.push_back(name);
}

void ArgParser::addFlag(const std::string& name, const std::string& help) {
  VATES_REQUIRE(!options_.contains(name), "duplicate flag --" + name);
  options_[name] = Option{help, "false", /*isFlag=*/true, false};
  declarationOrder_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << helpText();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool hasInlineValue = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      hasInlineValue = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw InvalidArgument("unknown option --" + name + " (see --help)");
    }
    Option& opt = it->second;
    if (opt.isFlag) {
      opt.value = hasInlineValue ? value : "true";
      opt.provided = true;
      continue;
    }
    if (!hasInlineValue) {
      if (i + 1 >= argc) {
        throw InvalidArgument("option --" + name + " requires a value");
      }
      value = argv[++i];
    }
    opt.value = std::move(value);
    opt.provided = true;
  }
  return true;
}

ArgParser::Option& ArgParser::find(const std::string& name) {
  auto it = options_.find(name);
  if (it == options_.end()) {
    throw InvalidArgument("option --" + name + " was never declared");
  }
  return it->second;
}

const ArgParser::Option& ArgParser::find(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) {
    throw InvalidArgument("option --" + name + " was never declared");
  }
  return it->second;
}

std::string ArgParser::getString(const std::string& name) const {
  return find(name).value;
}

double ArgParser::getDouble(const std::string& name) const {
  const std::string& value = find(name).value;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    if (pos != value.size()) {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + ": '" + value +
                          "' is not a number");
  }
}

std::int64_t ArgParser::getInt(const std::string& name) const {
  const std::string& value = find(name).value;
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(value, &pos);
    if (pos != value.size()) {
      throw std::invalid_argument(value);
    }
    return static_cast<std::int64_t>(parsed);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + ": '" + value +
                          "' is not an integer");
  }
}

bool ArgParser::getFlag(const std::string& name) const {
  const Option& opt = find(name);
  return opt.value == "true" || opt.value == "1" || opt.value == "yes";
}

bool ArgParser::wasProvided(const std::string& name) const {
  return find(name).provided;
}

std::string ArgParser::helpText() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : declarationOrder_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.isFlag) {
      os << " <value>";
    }
    os << "\n      " << opt.help;
    if (!opt.isFlag) {
      os << " (default: " << opt.value << ')';
    }
    os << '\n';
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

} // namespace vates
