#include "vates/support/rng.hpp"

#include <cmath>

namespace vates {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
} // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.next();
  }
}

Xoshiro256::Xoshiro256(std::uint64_t seed, std::uint64_t streamId) noexcept {
  // Mix the stream id through SplitMix64 so that consecutive ids yield
  // unrelated states; then expand as usual.
  SplitMix64 mixer(seed ^ (0x9e3779b97f4a7c15ULL * (streamId + 1)));
  for (auto& s : state_) {
    s = mixer.next();
  }
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> [0,1) double, the canonical mapping.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniformInt(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Xoshiro256::normal() noexcept {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cachedNormal_ = radius * std::sin(angle);
  hasCachedNormal_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Xoshiro256::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Xoshiro256::poisson(double mean) noexcept {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

} // namespace vates
