#include "vates/support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace vates {

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& text) {
  const auto notSpace = [](unsigned char c) { return std::isspace(c) == 0; };
  auto first = std::find_if(text.begin(), text.end(), notSpace);
  auto last = std::find_if(text.rbegin(), text.rend(), notSpace).base();
  return first < last ? std::string(first, last) : std::string();
}

std::string toLower(const std::string& text) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return lower;
}

std::string humanBytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  return unit == 0 ? strfmt("%llu B", static_cast<unsigned long long>(bytes))
                   : strfmt("%.1f %s", value, units[unit]);
}

std::string withCommas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int countdown = static_cast<int>(digits.size());
  for (char c : digits) {
    out.push_back(c);
    --countdown;
    if (countdown > 0 && countdown % 3 == 0) {
      out.push_back(',');
    }
  }
  return out;
}

} // namespace vates
