#include "vates/support/timer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vates {

void StageTimes::add(const std::string& name, double seconds) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    order_.push_back(name);
  }
  it->second.total += seconds;
  it->second.count += 1;
}

double StageTimes::total(const std::string& name) const noexcept {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.total;
}

std::size_t StageTimes::count(const std::string& name) const noexcept {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

double StageTimes::grandTotal() const noexcept {
  double sum = 0.0;
  for (const auto& [name, entry] : entries_) {
    sum += entry.total;
  }
  return sum;
}

void StageTimes::merge(const StageTimes& other) {
  for (const auto& name : other.order_) {
    const auto& entry = other.entries_.at(name);
    auto [it, inserted] = entries_.try_emplace(name);
    if (inserted) {
      order_.push_back(name);
    }
    it->second.total += entry.total;
    it->second.count += entry.count;
  }
}

void StageTimes::mergeMax(const StageTimes& other) {
  for (const auto& name : other.order_) {
    const auto& entry = other.entries_.at(name);
    auto [it, inserted] = entries_.try_emplace(name);
    if (inserted) {
      order_.push_back(name);
    }
    it->second.total = std::max(it->second.total, entry.total);
    it->second.count = std::max(it->second.count, entry.count);
  }
}

void StageTimes::clear() noexcept {
  entries_.clear();
  order_.clear();
}

void SharedStageTimes::add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  times_.add(name, seconds);
}

void SharedStageTimes::merge(const StageTimes& other) {
  std::lock_guard<std::mutex> lock(mutex_);
  times_.merge(other);
}

StageTimes SharedStageTimes::take() {
  std::lock_guard<std::mutex> lock(mutex_);
  StageTimes result = std::move(times_);
  times_.clear();
  return result;
}

StageTimes SharedStageTimes::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return times_;
}

std::string StageTimes::table(const std::string& title) const {
  std::ostringstream os;
  os << title << '\n';
  os << std::left << std::setw(24) << "Stage" << std::right << std::setw(12)
     << "WCT (s)" << std::setw(8) << "calls" << '\n';
  os << std::string(44, '-') << '\n';
  for (const auto& name : order_) {
    const auto& entry = entries_.at(name);
    os << std::left << std::setw(24) << name << std::right << std::setw(12)
       << std::fixed << std::setprecision(4) << entry.total << std::setw(8)
       << entry.count << '\n';
  }
  os << std::string(44, '-') << '\n';
  os << std::left << std::setw(24) << "Total" << std::right << std::setw(12)
     << std::fixed << std::setprecision(4) << grandTotal() << '\n';
  return os.str();
}

} // namespace vates
