#pragma once
/// \file timer.hpp
/// Wall-clock timing utilities used to reproduce the paper's per-stage
/// wall-clock-time (WCT) tables (UpdateEvents / MDNorm / BinMD / Total).

#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vates {

/// Simple monotonic stopwatch.
class WallTimer {
public:
  WallTimer() { reset(); }

  /// Restart the stopwatch at now.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage durations, preserving first-seen order, and can
/// render them as the rows of a WCT table.  Each stage may be entered many
/// times (e.g. MDNorm once per file); the table reports sums and counts.
class StageTimes {
public:
  /// Add \p seconds to stage \p name (creates it on first use).
  void add(const std::string& name, double seconds);

  /// Total accumulated seconds for \p name; 0 if never recorded.
  double total(const std::string& name) const noexcept;

  /// Number of add() calls for \p name.
  std::size_t count(const std::string& name) const noexcept;

  /// Stage names in first-recorded order.
  const std::vector<std::string>& names() const noexcept { return order_; }

  /// Sum over all stages.
  double grandTotal() const noexcept;

  /// Merge another set of stage times into this one (used when combining
  /// per-rank timings).
  void merge(const StageTimes& other);

  /// Merge keeping the per-stage *maximum* instead of the sum — the
  /// critical-path view used when ranks execute concurrently.
  void mergeMax(const StageTimes& other);

  /// Remove all recorded stages.
  void clear() noexcept;

  /// Render a fixed-width table like the paper's Tables III–VI.
  std::string table(const std::string& title) const;

private:
  struct Entry {
    double total = 0.0;
    std::size_t count = 0;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

/// Mutex-guarded StageTimes for stages that run on different threads at
/// once (the overlapped pipeline: the prefetch thread records
/// UpdateEvents while the compute thread records MDNorm/BinMD, and the
/// concurrent-kernel siblings record simultaneously).  Each thread
/// records the wall time of the stage it ran; merging is serialized
/// here so StageTimes itself stays single-threaded everywhere else.
class SharedStageTimes {
public:
  /// Thread-safe equivalent of StageTimes::add().
  void add(const std::string& name, double seconds);

  /// Thread-safe merge of a privately accumulated StageTimes.
  void merge(const StageTimes& other);

  /// Move the accumulated times out (leaves this empty).  Call after
  /// every recording thread has been joined.
  StageTimes take();

  /// Thread-safe copy of the accumulated times so far — the live
  /// mid-reduction view a job-status query reads while recording
  /// threads keep merging.
  StageTimes snapshot() const;

private:
  mutable std::mutex mutex_;
  StageTimes times_;
};

/// RAII helper: times a scope and records it into a StageTimes on exit.
class ScopedStage {
public:
  ScopedStage(StageTimes& sink, std::string name)
      : sink_(sink), name_(std::move(name)) {}
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;
  ~ScopedStage() { sink_.add(name_, timer_.seconds()); }

private:
  StageTimes& sink_;
  std::string name_;
  WallTimer timer_;
};

/// RAII twin of ScopedStage for a SharedStageTimes sink — used by the
/// overlapped pipeline's concurrently executing stages.
class ScopedSharedStage {
public:
  ScopedSharedStage(SharedStageTimes& sink, std::string name)
      : sink_(sink), name_(std::move(name)) {}
  ScopedSharedStage(const ScopedSharedStage&) = delete;
  ScopedSharedStage& operator=(const ScopedSharedStage&) = delete;
  ~ScopedSharedStage() { sink_.add(name_, timer_.seconds()); }

private:
  SharedStageTimes& sink_;
  std::string name_;
  WallTimer timer_;
};

} // namespace vates
