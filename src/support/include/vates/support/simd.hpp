#pragma once
/// \file simd.hpp
/// Portable fixed-width SIMD lanes for the kernel hot paths.
///
/// One vector type, `simd::f64v`, wraps the widest double-precision ISA
/// the translation unit was compiled for:
///   - AVX2   : 4 × f64 (`__m256d`)          — x86-64 with -mavx2 /
///              -march=native (see the VATES_NATIVE CMake option),
///   - NEON   : 2 × f64 (`float64x2_t`)      — AArch64,
///   - scalar : 1 × f64 (a plain `double`)   — everything else, and any
///              build configured with -DVATES_SIMD_FORCE_SCALAR=ON.
///
/// Design rules, in priority order:
///
///  1. **Bit-identity per lane.**  Every operation maps to exactly one
///     IEEE-754 double operation per lane — add, sub, mul, compare,
///     floor — and nothing is ever fused (no FMA): a vector expression
///     built from these ops produces, lane by lane, the same bits as
///     the equivalent scalar expression.  `min`/`max` are implemented
///     as `select(a < b, ...)` on every ISA (NEON's native min has
///     different NaN semantics), so they equal the scalar ternary
///     `a < b ? a : b` bitwise too.  This is what lets the vectorized
///     kernels stay inside the reference oracle's tolerance — on the
///     Serial backend they are bitwise equal to the scalar paths.
///  2. **Scalar fallback is the same code.**  With width 1 the wrapper
///     degenerates to plain double arithmetic; the kernels' "vector"
///     paths then execute the identical expressions the scalar paths
///     do, which the lane-parity tests (tests/test_simd.cpp) pin.
///  3. **No allocation, trivially copyable, kernel-argument friendly**
///     (Per.14/Per.15) — same contract as GridView/FluxTableView.
///
/// Masks come back from comparisons as an opaque `simd::Mask`; consume
/// them with `select` (lanewise ternary) or `laneBits` (one bit per
/// lane, lane 0 = bit 0) for control flow and tail compaction.

#include <cstddef>
#include <string>

#if defined(VATES_SIMD_FORCE_SCALAR)
#define VATES_SIMD_ISA_SCALAR 1
#elif defined(__AVX2__)
#define VATES_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define VATES_SIMD_ISA_NEON 1
#include <arm_neon.h>
#else
#define VATES_SIMD_ISA_SCALAR 1
#endif

#if VATES_SIMD_ISA_SCALAR
#include <cmath>
#endif

namespace vates {

/// Per-kernel SIMD selection, plumbed as MDNormOptions::simd / the
/// runBinMD parameter, the INI `simd` key, and the VATES_SIMD
/// environment override.
///  - Auto: vector lanes on the CPU backends when the build has a wide
///          ISA (simd::kWidth > 1); scalar on Backend::DeviceSim, whose
///          simulated SIMT model executes one work item per lane
///          already (a real GPU backend vectorizes across the warp, not
///          inside the work item).
///  - Off:  always the scalar paths (the pre-SIMD kernels, bit for bit).
///  - On:   vector lanes wherever the build has them (width 1 builds
///          still run the scalar expressions — see simd.hpp rule 2).
enum class SimdMode : int { Auto = 0, Off = 1, On = 2 };

/// "auto", "off", "on".
const char* simdModeName(SimdMode mode) noexcept;

/// Parse a mode name (case-insensitive, surrounding whitespace ignored;
/// accepts the names above plus the aliases "scalar" for Off and
/// "vector"/"simd" for On).  Throws InvalidArgument for unknown names.
SimdMode parseSimdMode(const std::string& name);

namespace simd {

#if VATES_SIMD_ISA_AVX2
inline constexpr std::size_t kWidth = 4;
#elif VATES_SIMD_ISA_NEON
inline constexpr std::size_t kWidth = 2;
#else
inline constexpr std::size_t kWidth = 1;
#endif

/// "avx2", "neon", or "scalar" — what this binary was compiled with.
const char* isaName() noexcept;

struct f64v;

/// Lanewise comparison result; consume via select() or laneBits().
struct Mask {
#if VATES_SIMD_ISA_AVX2
  __m256d m;
#elif VATES_SIMD_ISA_NEON
  uint64x2_t m;
#else
  bool m;
#endif
};

/// One bit per lane (lane 0 = bit 0); a set bit means the comparison
/// held on that lane.
inline unsigned laneBits(Mask mask) noexcept {
#if VATES_SIMD_ISA_AVX2
  return static_cast<unsigned>(_mm256_movemask_pd(mask.m));
#elif VATES_SIMD_ISA_NEON
  return static_cast<unsigned>(vgetq_lane_u64(mask.m, 0) & 1u) |
         (static_cast<unsigned>(vgetq_lane_u64(mask.m, 1) & 1u) << 1);
#else
  return mask.m ? 1u : 0u;
#endif
}

inline bool anyLane(Mask mask) noexcept { return laneBits(mask) != 0u; }

/// Mask with exactly lane \p lane set (lane < kWidth).  Lets callers
/// splice one recomputed scalar into a register-resident vector via
/// select() instead of a store + wide reload, which on x86 defeats
/// store-to-load forwarding (the wide load overlapping a narrow store
/// stalls until the store retires).
inline Mask laneMask(std::size_t lane) noexcept {
#if VATES_SIMD_ISA_AVX2
  alignas(32) static constexpr unsigned long long kTable[4][4] = {
      {~0ull, 0ull, 0ull, 0ull},
      {0ull, ~0ull, 0ull, 0ull},
      {0ull, 0ull, ~0ull, 0ull},
      {0ull, 0ull, 0ull, ~0ull},
  };
  return {_mm256_load_pd(reinterpret_cast<const double*>(kTable[lane]))};
#elif VATES_SIMD_ISA_NEON
  alignas(16) static constexpr unsigned long long kTable[2][2] = {
      {~0ull, 0ull},
      {0ull, ~0ull},
  };
  return {vld1q_u64(&kTable[lane][0])};
#else
  (void)lane;
  return {true};
#endif
}
inline bool allLanes(Mask mask) noexcept {
  return laneBits(mask) == (1u << kWidth) - 1u;
}

/// kWidth double lanes.  All arithmetic is one IEEE operation per lane;
/// see the file header for the bit-identity contract.
struct f64v {
#if VATES_SIMD_ISA_AVX2
  __m256d v;
#elif VATES_SIMD_ISA_NEON
  float64x2_t v;
#else
  double v;
#endif

  static f64v load(const double* p) noexcept {
#if VATES_SIMD_ISA_AVX2
    return {_mm256_loadu_pd(p)};
#elif VATES_SIMD_ISA_NEON
    return {vld1q_f64(p)};
#else
    return {*p};
#endif
  }

  static f64v broadcast(double x) noexcept {
#if VATES_SIMD_ISA_AVX2
    return {_mm256_set1_pd(x)};
#elif VATES_SIMD_ISA_NEON
    return {vdupq_n_f64(x)};
#else
    return {x};
#endif
  }

  static f64v zero() noexcept { return broadcast(0.0); }

  void store(double* p) const noexcept {
#if VATES_SIMD_ISA_AVX2
    _mm256_storeu_pd(p, v);
#elif VATES_SIMD_ISA_NEON
    vst1q_f64(p, v);
#else
    *p = v;
#endif
  }

  double lane(std::size_t i) const noexcept {
#if VATES_SIMD_ISA_SCALAR
    (void)i;
    return v;
#else
    alignas(32) double lanes[kWidth];
    store(lanes);
    return lanes[i];
#endif
  }

  friend f64v operator+(f64v a, f64v b) noexcept {
#if VATES_SIMD_ISA_AVX2
    return {_mm256_add_pd(a.v, b.v)};
#elif VATES_SIMD_ISA_NEON
    return {vaddq_f64(a.v, b.v)};
#else
    return {a.v + b.v};
#endif
  }

  friend f64v operator-(f64v a, f64v b) noexcept {
#if VATES_SIMD_ISA_AVX2
    return {_mm256_sub_pd(a.v, b.v)};
#elif VATES_SIMD_ISA_NEON
    return {vsubq_f64(a.v, b.v)};
#else
    return {a.v - b.v};
#endif
  }

  friend f64v operator*(f64v a, f64v b) noexcept {
#if VATES_SIMD_ISA_AVX2
    return {_mm256_mul_pd(a.v, b.v)};
#elif VATES_SIMD_ISA_NEON
    return {vmulq_f64(a.v, b.v)};
#else
    return {a.v * b.v};
#endif
  }

  friend f64v operator/(f64v a, f64v b) noexcept {
#if VATES_SIMD_ISA_AVX2
    return {_mm256_div_pd(a.v, b.v)};
#elif VATES_SIMD_ISA_NEON
    return {vdivq_f64(a.v, b.v)};
#else
    return {a.v / b.v};
#endif
  }
};

/// Lanewise |a| — exact (clears the sign bit; IEEE fabs), so it matches
/// scalar std::fabs bitwise including on NaN and ±0.0 lanes.
inline f64v abs(f64v a) noexcept {
#if VATES_SIMD_ISA_AVX2
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
#elif VATES_SIMD_ISA_NEON
  return {vabsq_f64(a.v)};
#else
  return {std::fabs(a.v)};
#endif
}

inline Mask cmpLT(f64v a, f64v b) noexcept { // a < b
#if VATES_SIMD_ISA_AVX2
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
#elif VATES_SIMD_ISA_NEON
  return {vcltq_f64(a.v, b.v)};
#else
  return {a.v < b.v};
#endif
}

inline Mask cmpLE(f64v a, f64v b) noexcept { // a <= b
#if VATES_SIMD_ISA_AVX2
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
#elif VATES_SIMD_ISA_NEON
  return {vcleq_f64(a.v, b.v)};
#else
  return {a.v <= b.v};
#endif
}

inline Mask cmpGE(f64v a, f64v b) noexcept { // a >= b
#if VATES_SIMD_ISA_AVX2
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
#elif VATES_SIMD_ISA_NEON
  return {vcgeq_f64(a.v, b.v)};
#else
  return {a.v >= b.v};
#endif
}

inline Mask maskAnd(Mask a, Mask b) noexcept {
#if VATES_SIMD_ISA_AVX2
  return {_mm256_and_pd(a.m, b.m)};
#elif VATES_SIMD_ISA_NEON
  return {vandq_u64(a.m, b.m)};
#else
  return {a.m && b.m};
#endif
}

/// Lanewise `mask ? a : b`.
inline f64v select(Mask mask, f64v a, f64v b) noexcept {
#if VATES_SIMD_ISA_AVX2
  return {_mm256_blendv_pd(b.v, a.v, mask.m)};
#elif VATES_SIMD_ISA_NEON
  return {vbslq_f64(mask.m, a.v, b.v)};
#else
  return {mask.m ? a.v : b.v};
#endif
}

/// Lanewise `a < b ? a : b` — matches the scalar ternary bitwise on
/// every ISA, including its NaN behavior (NaN compares false, so b is
/// taken).  Deliberately NOT the native min instruction on NEON.
inline f64v minTernary(f64v a, f64v b) noexcept {
  return select(cmpLT(a, b), a, b);
}

/// Lanewise `a < b ? b : a` (scalar max-by-ternary, same rationale).
inline f64v maxTernary(f64v a, f64v b) noexcept {
  return select(cmpLT(a, b), b, a);
}

/// Lanewise floor.  For non-negative lanes this equals the
/// float→integer truncation the scalar kernels perform.
inline f64v floor(f64v a) noexcept {
#if VATES_SIMD_ISA_AVX2
  return {_mm256_floor_pd(a.v)};
#elif VATES_SIMD_ISA_NEON
  return {vrndmq_f64(a.v)};
#else
  return {std::floor(a.v)};
#endif
}

/// Smallest lane value (exact — min is not a rounding operation).
/// Lanes holding +inf padding never win unless all lanes are +inf.
inline double reduceMin(f64v a) noexcept {
#if VATES_SIMD_ISA_AVX2
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d m2 = _mm_min_pd(lo, hi);
  const __m128d m1 = _mm_min_sd(m2, _mm_unpackhi_pd(m2, m2));
  return _mm_cvtsd_f64(m1);
#elif VATES_SIMD_ISA_NEON
  return vminvq_f64(a.v);
#else
  return a.v;
#endif
}

} // namespace simd
} // namespace vates
