#pragma once
/// \file inifile.hpp
/// Minimal INI-style configuration files.
///
/// The production Garnet workflow is driven by reduction-plan files the
/// scientist edits (the paper's artifact description: "The CORELLI and
/// TOPAZ reduction files were modified to match the parameters used in
/// the proxies").  This parser backs the same capability here
/// (core/plan.hpp): `[section]` headers, `key = value` pairs, `#`/`;`
/// comments, whitespace-insensitive, with line-numbered parse errors.

#include <map>
#include <string>
#include <vector>

namespace vates {

class IniFile {
public:
  IniFile() = default;

  /// Parse from text; throws InvalidArgument naming the bad line.
  static IniFile parse(const std::string& text);

  /// Read and parse a file; throws IOError when unreadable.
  static IniFile load(const std::string& path);

  bool has(const std::string& section, const std::string& key) const;

  /// Typed getters; the non-defaulted forms throw InvalidArgument when
  /// the key is missing or (for numbers) malformed.
  std::string getString(const std::string& section,
                        const std::string& key) const;
  std::string getString(const std::string& section, const std::string& key,
                        const std::string& fallback) const;
  double getDouble(const std::string& section, const std::string& key) const;
  double getDouble(const std::string& section, const std::string& key,
                   double fallback) const;
  long long getInt(const std::string& section, const std::string& key) const;
  long long getInt(const std::string& section, const std::string& key,
                   long long fallback) const;
  bool getBool(const std::string& section, const std::string& key,
               bool fallback) const;

  void set(const std::string& section, const std::string& key,
           const std::string& value);

  /// Section names in first-seen order.
  std::vector<std::string> sections() const;
  /// Keys of one section in first-seen order (empty if absent).
  std::vector<std::string> keys(const std::string& section) const;

  /// Render back to INI text (stable ordering).
  std::string serialize() const;
  /// serialize() to a file; throws IOError on failure.
  void save(const std::string& path) const;

private:
  struct Section {
    std::map<std::string, std::string> values;
    std::vector<std::string> keyOrder;
  };
  const std::string* find(const std::string& section,
                          const std::string& key) const;

  std::map<std::string, Section> sections_;
  std::vector<std::string> sectionOrder_;
};

} // namespace vates
