#pragma once
/// \file log.hpp
/// Minimal thread-safe logging with severity levels.
///
/// The logger writes single lines to a std::ostream (stderr by default).
/// It is intentionally tiny: benchmarks and the reduction pipeline use it
/// for progress and configuration echo, never on a hot path.

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace vates {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Convert a level to its fixed-width tag ("DEBUG", "INFO ", ...).
const char* logLevelTag(LogLevel level) noexcept;

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Throws InvalidArgument for anything else.
LogLevel parseLogLevel(const std::string& text);

/// Process-wide logger.  All member functions are thread-safe.
class Logger {
public:
  /// The global instance used by the VATES_LOG_* macros.  On first use
  /// it honors the VATES_LOG_TIMESTAMPS environment variable ("1",
  /// "true", "on", "yes" enable) so daemons get correlatable logs
  /// without a code change.
  static Logger& global();

  /// Messages below \p level are discarded.
  void setLevel(LogLevel level) noexcept;
  LogLevel level() const noexcept;

  /// Redirect output (defaults to std::clog).  The stream must outlive
  /// the logger's use; pass nullptr to restore the default.
  void setStream(std::ostream* stream) noexcept;

  /// Prefix every line with "[<ISO-8601 UTC ms> #<thread-id>] " so a
  /// multi-worker daemon's interleaved lines can be ordered and
  /// attributed.  Off by default: the unprefixed output stays
  /// byte-identical to what log-scraping callers already parse.
  void setTimestamps(bool enabled) noexcept;
  bool timestamps() const noexcept;

  /// Emit one line "[TAG] message" (with the optional timestamp/thread
  /// prefix) if \p level passes the filter.
  void write(LogLevel level, const std::string& message);

private:
  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::Info;
  std::ostream* stream_ = nullptr;
  bool timestamps_ = false;
};

namespace detail {
/// Builds the message lazily so disabled levels cost one atomic load.
template <typename Fn>
void logWith(LogLevel level, Fn&& fn) {
  Logger& log = Logger::global();
  if (static_cast<int>(level) >= static_cast<int>(log.level())) {
    std::ostringstream os;
    fn(os);
    log.write(level, os.str());
  }
}
} // namespace detail

} // namespace vates

#define VATES_LOG_DEBUG(expr)                                                 \
  ::vates::detail::logWith(::vates::LogLevel::Debug,                          \
                           [&](std::ostream& os_) { os_ << expr; })
#define VATES_LOG_INFO(expr)                                                  \
  ::vates::detail::logWith(::vates::LogLevel::Info,                           \
                           [&](std::ostream& os_) { os_ << expr; })
#define VATES_LOG_WARN(expr)                                                  \
  ::vates::detail::logWith(::vates::LogLevel::Warn,                           \
                           [&](std::ostream& os_) { os_ << expr; })
#define VATES_LOG_ERROR(expr)                                                 \
  ::vates::detail::logWith(::vates::LogLevel::Error,                          \
                           [&](std::ostream& os_) { os_ << expr; })
