#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random generation for synthetic workloads.
///
/// The synthetic CORELLI/TOPAZ event generators must be reproducible across
/// runs, platforms, and thread decompositions, so we implement our own
/// xoshiro256** generator (public-domain algorithm by Blackman & Vigna)
/// instead of relying on implementation-defined std::random distributions.
/// Streams can be split per (rank, file, detector) so parallel generation
/// is order-independent.

#include <array>
#include <cstdint>

namespace vates {

/// SplitMix64 — used to seed xoshiro streams from a single 64-bit seed.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Xoshiro256 {
public:
  /// Seed via SplitMix64 expansion of a single 64-bit value.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  /// Construct an independent stream for a given (seed, streamId) pair.
  /// Different streamIds give statistically independent sequences, which
  /// lets per-file / per-detector generation run in any order.
  Xoshiro256(std::uint64_t seed, std::uint64_t streamId) noexcept;

  /// Next raw 64 bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) (n > 0); unbiased via rejection.
  std::uint64_t uniformInt(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (caches the second deviate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma) noexcept;

  /// Exponential with the given rate (rate > 0).
  double exponential(double rate) noexcept;

  /// Poisson-distributed count (Knuth for small mean, normal approx
  /// beyond mean > 64 — adequate for synthetic intensities).
  std::uint64_t poisson(double mean) noexcept;

private:
  std::array<std::uint64_t, 4> state_{};
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

} // namespace vates
