#pragma once
/// \file error.hpp
/// Exception hierarchy for the minivates libraries.
///
/// All recoverable failures surface as subclasses of vates::Error so that
/// callers can catch the whole family at an API boundary.  Programmer
/// errors (violated preconditions) use VATES_REQUIRE which throws
/// InvalidArgument with the failing expression text.

#include <stdexcept>
#include <string>

namespace vates {

/// Root of the minivates exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A file could not be opened, parsed, or verified (bad magic, CRC, EOF).
class IOError : public Error {
public:
  explicit IOError(const std::string& what) : Error(what) {}
};

/// An operation is not available in the current configuration
/// (e.g. requesting the OpenMP backend in a build without OpenMP).
class Unsupported : public Error {
public:
  explicit Unsupported(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or met a degenerate input
/// (singular UB matrix, zero-length scattering direction, ...).
class NumericalError : public Error {
public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// A cooperative cancellation request stopped the operation before it
/// completed.  Thrown instead of returning partial results: a cancelled
/// reduction never exposes half-accumulated histograms.
class Cancelled : public Error {
public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwRequire(const char* expr, const char* file, int line,
                               const std::string& message);
} // namespace detail

} // namespace vates

/// Precondition check that survives release builds.  Throws
/// vates::InvalidArgument naming the failed expression and location.
#define VATES_REQUIRE(expr, message)                                          \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::vates::detail::throwRequire(#expr, __FILE__, __LINE__, (message));    \
    }                                                                         \
  } while (false)
