#pragma once
/// \file cli.hpp
/// Tiny declarative command-line parser shared by the examples and the
/// benchmark harness.  Supports `--name value`, `--name=value`, boolean
/// flags, typed defaults, and automatic `--help` text.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vates {

/// Declarative option set.  Declare options up front, then parse().
///
/// Example:
/// \code
///   ArgParser args("benzil_corelli", "Reduce the Benzil/CORELLI workload");
///   args.addOption("scale", "Workload scale factor (1.0 = paper size)", "0.01");
///   args.addFlag("device", "Run kernels on the DeviceSim backend");
///   args.parse(argc, argv);
///   double scale = args.getDouble("scale");
/// \endcode
class ArgParser {
public:
  ArgParser(std::string program, std::string description);

  /// Declare a value option with a default (shown in --help).
  void addOption(const std::string& name, const std::string& help,
                 const std::string& defaultValue);

  /// Declare a boolean flag (default false).
  void addFlag(const std::string& name, const std::string& help);

  /// Parse argv.  Throws InvalidArgument on unknown options or missing
  /// values.  Returns false if --help was requested (help text already
  /// printed to stdout) — callers should exit 0 in that case.
  bool parse(int argc, const char* const* argv);

  /// Accessors; all throw InvalidArgument if \p name was never declared.
  std::string getString(const std::string& name) const;
  double getDouble(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
  bool getFlag(const std::string& name) const;

  /// True if the user supplied the option explicitly (vs default).
  bool wasProvided(const std::string& name) const;

  /// Positional arguments collected during parse().
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The rendered help text.
  std::string helpText() const;

private:
  struct Option {
    std::string help;
    std::string value;
    bool isFlag = false;
    bool provided = false;
  };

  Option& find(const std::string& name);
  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> declarationOrder_;
  std::vector<std::string> positional_;
};

} // namespace vates
