#pragma once
/// \file strings.hpp
/// Small string helpers (gcc 12 lacks std::format, so we keep a printf
/// shim plus the usual split/trim utilities).

#include <cstdarg>
#include <string>
#include <vector>

namespace vates {

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Strip leading and trailing ASCII whitespace.
std::string trim(const std::string& text);

/// Lower-case an ASCII string.
std::string toLower(const std::string& text);

/// Render a byte count as a human-friendly "12.3 MiB" style string.
std::string humanBytes(std::uint64_t bytes);

/// Render a count with thousands separators ("1,600,000").
std::string withCommas(std::uint64_t value);

} // namespace vates
