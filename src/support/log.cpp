#include "vates/support/log.hpp"

#include "vates/support/error.hpp"

#include <algorithm>
#include <cctype>
#include <iostream>

namespace vates {

const char* logLevelTag(LogLevel level) noexcept {
  switch (level) {
  case LogLevel::Debug: return "DEBUG";
  case LogLevel::Info:  return "INFO ";
  case LogLevel::Warn:  return "WARN ";
  case LogLevel::Error: return "ERROR";
  case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}

LogLevel parseLogLevel(const std::string& text) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info")  return LogLevel::Info;
  if (lower == "warn")  return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off")   return LogLevel::Off;
  throw InvalidArgument("unknown log level: '" + text + "'");
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::setLevel(LogLevel level) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

void Logger::setStream(std::ostream* stream) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(level) < static_cast<int>(level_)) {
    return;
  }
  std::ostream& os = stream_ != nullptr ? *stream_ : std::clog;
  os << '[' << logLevelTag(level) << "] " << message << '\n';
}

} // namespace vates
