#include "vates/support/log.hpp"

#include "vates/support/error.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <thread>

namespace vates {

namespace {

bool envTruthy(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return false;
  }
  std::string lower(value);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return lower == "1" || lower == "true" || lower == "on" || lower == "yes";
}

/// "2026-08-07T12:34:56.789Z" — UTC wall clock with millisecond
/// resolution, the prefix that lets journal and daemon lines from
/// different workers (and different hosts) be collated.
std::string isoTimestampUtc() {
  using namespace std::chrono;
  const system_clock::time_point now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &seconds);
#else
  gmtime_r(&seconds, &utc);
#endif
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

} // namespace

const char* logLevelTag(LogLevel level) noexcept {
  switch (level) {
  case LogLevel::Debug: return "DEBUG";
  case LogLevel::Info:  return "INFO ";
  case LogLevel::Warn:  return "WARN ";
  case LogLevel::Error: return "ERROR";
  case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}

LogLevel parseLogLevel(const std::string& text) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info")  return LogLevel::Info;
  if (lower == "warn")  return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off")   return LogLevel::Off;
  throw InvalidArgument("unknown log level: '" + text + "'");
}

Logger& Logger::global() {
  static Logger instance;
  // One-time environment pickup (Logger holds a mutex, so it cannot be
  // returned from an initializing lambda by value).
  static const bool envApplied = [] {
    instance.setTimestamps(envTruthy("VATES_LOG_TIMESTAMPS"));
    return true;
  }();
  (void)envApplied;
  return instance;
}

void Logger::setLevel(LogLevel level) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

void Logger::setStream(std::ostream* stream) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream;
}

void Logger::setTimestamps(bool enabled) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  timestamps_ = enabled;
}

bool Logger::timestamps() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return timestamps_;
}

void Logger::write(LogLevel level, const std::string& message) {
  // The timestamp is rendered before taking the emit lock so queueing
  // on a contended logger does not skew the recorded time.
  std::string prefix;
  if (timestamps()) {
    std::ostringstream os;
    os << '[' << isoTimestampUtc() << " #" << std::this_thread::get_id()
       << "] ";
    prefix = os.str();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(level) < static_cast<int>(level_)) {
    return;
  }
  std::ostream& os = stream_ != nullptr ? *stream_ : std::clog;
  os << prefix << '[' << logLevelTag(level) << "] " << message << '\n';
}

} // namespace vates
