#include "vates/support/simd.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

namespace vates {

const char* simdModeName(SimdMode mode) noexcept {
  switch (mode) {
  case SimdMode::Auto:
    return "auto";
  case SimdMode::Off:
    return "off";
  case SimdMode::On:
    return "on";
  }
  return "auto";
}

SimdMode parseSimdMode(const std::string& name) {
  const std::string lower = toLower(trim(name));
  if (lower == "auto") {
    return SimdMode::Auto;
  }
  if (lower == "off" || lower == "scalar") {
    return SimdMode::Off;
  }
  if (lower == "on" || lower == "vector" || lower == "simd") {
    return SimdMode::On;
  }
  throw InvalidArgument("unknown simd mode '" + name +
                        "' (available: auto, off, on)");
}

namespace simd {

const char* isaName() noexcept {
#if VATES_SIMD_ISA_AVX2
  return "avx2";
#elif VATES_SIMD_ISA_NEON
  return "neon";
#else
  return "scalar";
#endif
}

} // namespace simd
} // namespace vates
