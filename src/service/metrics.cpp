#include "vates/service/metrics.hpp"

#include "vates/service/wire.hpp"

#include <algorithm>

namespace vates::service {

LatencyStats summarizeLatencies(std::vector<double> seconds) {
  LatencyStats stats;
  if (seconds.empty()) {
    return stats;
  }
  std::sort(seconds.begin(), seconds.end());
  stats.count = seconds.size();
  // Nearest-rank: the ceil(p * n)-th smallest sample (1-based).
  const auto rank = [&](double p) {
    const auto n = static_cast<double>(seconds.size());
    std::size_t r = static_cast<std::size_t>(p * n + (1.0 - 1e-12));
    r = std::clamp<std::size_t>(r, 1, seconds.size());
    return seconds[r - 1];
  };
  stats.p50 = rank(0.50);
  stats.p95 = rank(0.95);
  stats.max = seconds.back();
  for (const double s : seconds) {
    stats.total += s;
  }
  return stats;
}

double ServiceMetrics::cacheHitRate() const noexcept {
  const std::uint64_t denominator = cacheHits + cacheMisses;
  if (denominator == 0) {
    return 0.0;
  }
  return static_cast<double>(cacheHits) / static_cast<double>(denominator);
}

double ServiceMetrics::batchHitRate() const noexcept {
  const std::uint64_t denominator = sharedNormalizationJobs + normalizationPasses;
  if (denominator == 0) {
    return 0.0;
  }
  return static_cast<double>(sharedNormalizationJobs) /
         static_cast<double>(denominator);
}

std::string StreamMetrics::toJson() const {
  return JsonObject()
      .field("name", name)
      .field("shm", shmName)
      .field("frames_ingested", framesIngested)
      .field("pulses_ingested", pulsesIngested)
      .field("events_ingested", eventsIngested)
      .field("bytes_ingested", bytesIngested)
      .field("crc_failures", crcFailures)
      .field("overruns", overruns)
      .field("frames_dropped", framesDropped)
      .field("runs_dropped", runsDropped)
      .field("producer_restarts", producerRestarts)
      .field("lag_frames", lagFrames)
      .field("max_lag_frames", maxLagFrames)
      .field("runs_reduced", runsReduced)
      .field("end_of_stream", endOfStream)
      .field("producer_lost", producerLost)
      .fieldRaw("ingest_latency",
                JsonObject()
                    .field("count", std::uint64_t{ingestLatency.count})
                    .field("p50_s", ingestLatency.p50)
                    .field("p95_s", ingestLatency.p95)
                    .field("max_s", ingestLatency.max)
                    .field("total_s", ingestLatency.total)
                    .str())
      .str();
}

std::string ServiceMetrics::toJson() const {
  JsonObject latencyJson;
  for (const auto& [stage, stats] : latency) {
    latencyJson.fieldRaw(stage,
                         JsonObject()
                             .field("count", std::uint64_t{stats.count})
                             .field("p50_s", stats.p50)
                             .field("p95_s", stats.p95)
                             .field("max_s", stats.max)
                             .field("total_s", stats.total)
                             .str());
  }
  return JsonObject()
      .field("workers", std::uint64_t{workers})
      .field("queue_capacity", std::uint64_t{queueCapacity})
      .field("queue_depth", std::uint64_t{queueDepth})
      .field("max_queue_depth", std::uint64_t{maxQueueDepth})
      .field("running", std::uint64_t{running})
      .field("submitted", submitted)
      .field("admitted", admitted)
      .field("rejected_queue_full", rejectedQueueFull)
      .field("rejected_closed", rejectedClosed)
      .field("rejected_invalid", rejectedInvalid)
      .field("done", done)
      .field("failed", failed)
      .field("cancelled", cancelled)
      .field("expired", expired)
      .field("batches", batches)
      .field("shared_normalization_jobs", sharedNormalizationJobs)
      .field("normalization_passes", normalizationPasses)
      .field("batch_hit_rate", batchHitRate())
      .field("cache_hits", cacheHits)
      .field("cache_memory_hits", cacheMemoryHits)
      .field("cache_misses", cacheMisses)
      .field("cache_stores", cacheStores)
      .field("cache_store_failures", cacheStoreFailures)
      .field("cache_evictions", cacheEvictions)
      .field("cache_invalid_entries", cacheInvalidEntries)
      .field("cache_bytes", cacheBytes)
      .field("cache_entries", cacheEntries)
      .field("cache_hit_rate", cacheHitRate())
      .field("incremental_jobs", incrementalJobs)
      .field("autotuned_jobs", autotunedJobs)
      .fieldRaw("latency", latencyJson.str())
      .fieldRaw("streams", [this] {
        std::string array = "[";
        for (std::size_t i = 0; i < streams.size(); ++i) {
          if (i != 0) {
            array += ',';
          }
          array += streams[i].toJson();
        }
        return array + "]";
      }())
      .str();
}

} // namespace vates::service
