#include "vates/service/reduction_service.hpp"

#include "vates/core/autotune.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/events/experiment_setup.hpp"
#include "vates/parallel/executor.hpp"
#include "vates/stream/daq_simulator.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/stream/live_reducer.hpp"
#include "vates/support/error.hpp"
#include "vates/support/log.hpp"

#include <cstdlib>
#include <utility>

namespace vates::service {

namespace {

std::chrono::steady_clock::time_point now() {
  return std::chrono::steady_clock::now();
}

double secondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Parse a positive size_t environment variable; nullopt when unset or
/// malformed.
std::optional<std::size_t> envSize(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<std::size_t>(value);
}

/// VATES_AUTOTUNE=on/off (1/0, true/false) overrides the plan's
/// autotune flag at submission; malformed values are ignored.
void applyAutotuneEnv(core::AutotuneOptions& autotune) {
  const char* raw = std::getenv("VATES_AUTOTUNE");
  if (raw == nullptr || *raw == '\0') {
    return;
  }
  const std::string value(raw);
  if (value == "on" || value == "1" || value == "true") {
    autotune.enabled = true;
  } else if (value == "off" || value == "0" || value == "false") {
    autotune.enabled = false;
  }
}

///// The plan's shared-grid batch key: the normalization key, plus the
/// recorded event-file list when the plan reduces pre-recorded streams
/// — file-backed runs take their goniometer/charge metadata from the
/// files, so only identical file sets may share a normalization.
std::string planBatchKey(const core::ReductionPlan& plan) {
  std::string key = normalizationKey(plan);
  if (!plan.eventFiles.empty()) {
    key += ";ev=";
    for (const std::string& path : plan.eventFiles) {
      key += path;
      key += '|';
    }
  }
  return key;
}

} // namespace

ServiceOptions ServiceOptions::fromEnv() {
  ServiceOptions options;
  if (const auto workers = envSize("VATES_SERVICE_WORKERS");
      workers && *workers >= 1) {
    options.workers = *workers;
  }
  if (const auto queue = envSize("VATES_SERVICE_QUEUE"); queue && *queue >= 1) {
    options.queueCapacity = *queue;
  }
  if (const auto batch = envSize("VATES_SERVICE_BATCH")) {
    if (*batch == 0) {
      options.batching = false;
    } else {
      options.maxBatch = *batch;
    }
  }
  return options;
}

/// Handles a worker registers while its live job runs, letting cancel()
/// reach the channel/reducer owned by the worker's stack.  Only valid
/// while registered in liveControls_ (guarded by the service mutex).
struct ReductionService::LiveControl {
  stream::EventChannel* channel = nullptr;
  stream::LiveReducer* reducer = nullptr;
};

ReductionService::ReductionService(ServiceOptions options)
    : options_(options), queue_(options.queueCapacity) {
  VATES_REQUIRE(options_.workers >= 1, "service needs at least one worker");
  VATES_REQUIRE(options_.maxBatch >= 1, "maxBatch must be >= 1");
  VATES_REQUIRE(options_.liveChannelCapacity >= 1,
                "liveChannelCapacity must be >= 1");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ReductionService::~ReductionService() { shutdown(false); }

SubmitReceipt ReductionService::submit(JobRequest request) {
  SubmitReceipt receipt;
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++submitted_;
    std::string invalid;
    if (request.plan.workload.nFiles < 1) {
      invalid = "workload.files must be >= 1";
    } else if (request.plan.config.ranks < 1) {
      invalid = "reduction.ranks must be >= 1";
    } else if (!request.plan.eventFiles.empty() &&
               request.plan.eventFiles.size() !=
                   request.plan.workload.nFiles) {
      invalid = "event_files count must equal workload.files";
    } else if (request.deadlineSeconds < 0.0) {
      invalid = "deadline must be >= 0";
    }
    if (!invalid.empty()) {
      ++rejectedInvalid_;
      receipt.reason = "invalid: " + invalid;
      return receipt;
    }
    job = std::make_shared<Job>();
    job->id = nextId_++;
    job->sequence = job->id;
    job->request = std::move(request);
    applyAutotuneEnv(job->request.plan.config.autotune);
    // An autotune-enabled job's execution config is not known until its
    // probe runs, so it gets a unique key (it can neither lead nor
    // follow a shared-normalization batch while unresolved); the worker
    // recomputes the real key once the decision is locked.
    job->batchKey =
        job->request.kind != JobKind::Plan
            ? "live#" + std::to_string(job->id)
            : (job->request.plan.config.autotune.enabled
                   ? "tune#" + std::to_string(job->id)
                   : planBatchKey(job->request.plan));
    job->submitted = now();
    if (job->request.deadlineSeconds > 0.0) {
      job->deadline =
          job->submitted +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(job->request.deadlineSeconds));
    }
    job->filesTotal = job->request.plan.workload.nFiles;
    jobsById_.emplace(job->id, job);
  }

  switch (queue_.tryPush(job)) {
  case Admission::Accepted: {
    std::lock_guard<std::mutex> lock(mutex_);
    ++admitted_;
    receipt.accepted = true;
    receipt.id = job->id;
    return receipt;
  }
  case Admission::QueueFull: {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejectedQueueFull_;
    jobsById_.erase(job->id);
    receipt.reason = admissionName(Admission::QueueFull);
    return receipt;
  }
  case Admission::Closed: {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejectedClosed_;
    jobsById_.erase(job->id);
    receipt.reason = admissionName(Admission::Closed);
    return receipt;
  }
  }
  return receipt; // unreachable
}

JobStatus ReductionService::statusLocked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.kind = job.request.kind;
  status.priority = job.request.priority;
  status.tag = job.request.tag;
  status.sharedNormalization = job.sharedNormalization;
  status.cachedNormalization = job.cachedNormalization;
  status.incrementalRun = job.incrementalRun;
  status.autotunedConfig = job.autotunedConfig;
  status.error = job.error;
  const auto reference = now();
  status.queuedSeconds =
      secondsBetween(job.submitted, job.started.value_or(reference));
  if (job.started) {
    status.runSeconds =
        secondsBetween(*job.started, job.finished.value_or(reference));
  }
  status.progress.filesCompleted =
      job.filesCompleted.load(std::memory_order_relaxed);
  status.progress.filesTotal = job.filesTotal;
  status.progress.stages = job.progressStages.snapshot();
  return status;
}

std::optional<JobStatus> ReductionService::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobsById_.find(id);
  if (it == jobsById_.end()) {
    return std::nullopt;
  }
  return statusLocked(*it->second);
}

std::shared_ptr<const JobOutcome>
ReductionService::outcome(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobsById_.find(id);
  return it == jobsById_.end() ? nullptr : it->second->outcome;
}

std::shared_ptr<const JobOutcome> ReductionService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobsById_.find(id);
  if (it == jobsById_.end()) {
    return nullptr;
  }
  const std::shared_ptr<Job> job = it->second;
  terminal_.wait(lock, [&job] { return jobStateTerminal(job->state); });
  return job->outcome;
}

std::vector<JobStatus> ReductionService::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> statuses;
  statuses.reserve(jobsById_.size());
  for (const auto& [id, job] : jobsById_) {
    statuses.push_back(statusLocked(*job));
  }
  return statuses;
}

bool ReductionService::cancel(std::uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobsById_.find(id);
    if (it == jobsById_.end() || jobStateTerminal(it->second->state)) {
      return false;
    }
    it->second->cancel.requestCancel();
    // A running live job has no between-files poll point; reach into its
    // channel/reducer directly (valid while registered — the worker
    // deregisters under this same mutex before destroying them).
    const auto live = liveControls_.find(id);
    if (live != liveControls_.end()) {
      live->second->reducer->requestStop();
      live->second->channel->close();
    }
  }
  // Still queued?  Pull it out so it never starts.
  if (const std::shared_ptr<Job> removed = queue_.remove(id)) {
    finishJob(removed, JobState::Cancelled, "cancelled while queued",
              nullptr);
  }
  return true;
}

void ReductionService::shutdown(bool drainQueued) {
  const std::lock_guard<std::mutex> shutdownLock(shutdownMutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  const std::vector<std::shared_ptr<Job>> evicted = queue_.close(drainQueued);
  for (const std::shared_ptr<Job>& job : evicted) {
    finishJob(job, JobState::Cancelled, "service shutdown", nullptr);
  }
  if (!drainQueued) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobsById_) {
      if (!jobStateTerminal(job->state)) {
        job->cancel.requestCancel();
      }
    }
    for (const auto& [id, control] : liveControls_) {
      control->reducer->requestStop();
      control->channel->close();
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

cache::CacheStats ReductionService::cacheStats() const {
  cache::CacheStats total;
  std::lock_guard<std::mutex> lock(cachesMutex_);
  for (const auto& [directory, instance] : caches_) {
    total += instance->stats();
  }
  return total;
}

std::size_t ReductionService::clearCaches() {
  std::vector<std::shared_ptr<cache::NormalizationCache>> caches;
  {
    std::lock_guard<std::mutex> lock(cachesMutex_);
    caches.reserve(caches_.size());
    for (const auto& [directory, instance] : caches_) {
      caches.push_back(instance);
    }
  }
  std::size_t removed = 0;
  for (const auto& instance : caches) {
    removed += instance->clear();
  }
  return removed;
}

std::shared_ptr<cache::NormalizationCache>
ReductionService::cacheFor(const core::ReductionPlan& plan) {
  // Plan-level settings win over the service default; the environment
  // (VATES_CACHE_DIR / VATES_CACHE_BUDGET) wins over both.
  const bool planNamesDir = !plan.config.cacheDir.empty();
  const cache::CacheConfig config = cache::CacheConfig::withEnvOverrides(
      planNamesDir ? plan.config.cacheDir : options_.defaultCacheDir,
      planNamesDir ? plan.config.cacheBudgetBytes
                   : options_.defaultCacheBudgetBytes);
  if (config.directory.empty()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(cachesMutex_);
  std::shared_ptr<cache::NormalizationCache>& slot =
      caches_[config.directory];
  if (!slot) {
    slot = std::make_shared<cache::NormalizationCache>(config);
  }
  return slot;
}

ServiceMetrics ReductionService::metrics() const {
  ServiceMetrics m;
  m.workers = options_.workers;
  m.queueCapacity = queue_.capacity();
  m.queueDepth = queue_.depth();
  m.maxQueueDepth = queue_.maxDepth();
  const cache::CacheStats cacheTotals = cacheStats();
  m.cacheHits = cacheTotals.hits;
  m.cacheMemoryHits = cacheTotals.memoryHits;
  m.cacheMisses = cacheTotals.misses;
  m.cacheStores = cacheTotals.stores;
  m.cacheStoreFailures = cacheTotals.storeFailures;
  m.cacheEvictions = cacheTotals.evictions;
  m.cacheInvalidEntries = cacheTotals.invalidEntries;
  m.cacheBytes = cacheTotals.bytes;
  m.cacheEntries = cacheTotals.entries;
  std::lock_guard<std::mutex> lock(mutex_);
  m.incrementalJobs = incrementalJobs_;
  m.autotunedJobs = autotunedJobs_;
  m.running = running_;
  m.submitted = submitted_;
  m.admitted = admitted_;
  m.rejectedQueueFull = rejectedQueueFull_;
  m.rejectedClosed = rejectedClosed_;
  m.rejectedInvalid = rejectedInvalid_;
  m.done = done_;
  m.failed = failed_;
  m.cancelled = cancelled_;
  m.expired = expired_;
  m.batches = batches_;
  m.sharedNormalizationJobs = sharedNormalizationJobs_;
  m.normalizationPasses = normalizationPasses_;
  for (const auto& [name, samples] : latencySamples_) {
    m.latency[name] = summarizeLatencies(samples);
  }
  return m;
}

void ReductionService::workerLoop() {
  while (std::shared_ptr<Job> job = queue_.pop()) {
    process(job);
  }
}

bool ReductionService::beginRun(const std::shared_ptr<Job>& job) {
  if (job->deadline && now() > *job->deadline) {
    finishJob(job, JobState::Expired, "deadline expired before start",
              nullptr);
    return false;
  }
  if (job->cancel.cancelRequested()) {
    finishJob(job, JobState::Cancelled, "cancelled before start",
              nullptr);
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (job->state != JobState::Queued) {
    return false; // finished by a concurrent cancel/shutdown
  }
  job->state = JobState::Running;
  job->started = now();
  ++running_;
  return true;
}

void ReductionService::finishJob(const std::shared_ptr<Job>& job,
                                 JobState state, std::string error,
                                 std::shared_ptr<const core::ReductionResult> result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (jobStateTerminal(job->state)) {
      return; // already terminal (cancel races with the worker)
    }
    if (job->state == JobState::Running) {
      --running_;
    }
    job->state = state;
    job->error = std::move(error);
    job->finished = now();
    switch (state) {
    case JobState::Done:      ++done_; break;
    case JobState::Failed:    ++failed_; break;
    case JobState::Cancelled: ++cancelled_; break;
    case JobState::Expired:   ++expired_; break;
    case JobState::Queued:
    case JobState::Running:   break; // not terminal; unreachable
    }
    latencySamples_["queue-wait"].push_back(secondsBetween(
        job->submitted, job->started.value_or(*job->finished)));
    if (job->started) {
      latencySamples_["run"].push_back(
          secondsBetween(*job->started, *job->finished));
    }
    if (result) {
      for (const std::string& stage : result->times.names()) {
        latencySamples_[stage].push_back(result->times.total(stage));
      }
    }
    // The cold-vs-warm comparison operators actually watch: plan jobs
    // whose normalization (or whole partial state) came from the batch
    // leader or the persistent cache, vs full computes.
    if (state == JobState::Done && job->started &&
        job->request.kind == JobKind::Plan) {
      const bool warm = job->sharedNormalization || job->cachedNormalization ||
                        job->incrementalRun;
      latencySamples_[warm ? "run-warm" : "run-cold"].push_back(
          secondsBetween(*job->started, *job->finished));
    }
    JobOutcome outcome;
    outcome.status = statusLocked(*job);
    outcome.result = std::move(result);
    job->outcome = std::make_shared<const JobOutcome>(std::move(outcome));
  }
  terminal_.notify_all();
}

void ReductionService::process(const std::shared_ptr<Job>& leader) {
  if (leader->request.kind == JobKind::Live) {
    if (beginRun(leader)) {
      runLiveJob(leader);
    }
    return;
  }

  // Coalesce a shared-grid batch: drain queued jobs whose normalization
  // key matches the one we just popped.  Live jobs have per-job keys
  // and can never match.
  std::vector<std::shared_ptr<Job>> group;
  group.push_back(leader);
  if (options_.batching && options_.maxBatch > 1) {
    std::vector<std::shared_ptr<Job>> followers =
        queue_.popCompatible(leader->batchKey, options_.maxBatch - 1);
    group.insert(group.end(), followers.begin(), followers.end());
  }

  // The first member that survives its deadline/cancel gate leads and
  // pays the normalization pass.
  std::size_t leaderIndex = 0;
  while (leaderIndex < group.size() && !beginRun(group[leaderIndex])) {
    ++leaderIndex;
  }
  if (leaderIndex == group.size()) {
    return;
  }
  const std::shared_ptr<Job>& active = group[leaderIndex];
  const bool leaderDone = runPlanJob(active, nullptr);

  const Histogram3D* sharedNorm = nullptr;
  std::shared_ptr<const JobOutcome> leaderOutcome;
  if (leaderDone) {
    std::lock_guard<std::mutex> lock(mutex_);
    leaderOutcome = active->outcome; // keeps the histogram alive below
    if (leaderOutcome && leaderOutcome->result) {
      sharedNorm = &leaderOutcome->result->normalization;
    }
  }

  std::uint64_t sharedCount = 0;
  for (std::size_t i = leaderIndex + 1; i < group.size(); ++i) {
    const std::shared_ptr<Job>& follower = group[i];
    if (!beginRun(follower)) {
      continue;
    }
    // Leader failed or was cancelled: followers fall back to full
    // independent runs (each pays its own normalization pass).
    if (runPlanJob(follower, sharedNorm) && sharedNorm != nullptr) {
      ++sharedCount;
    }
  }

  // Compatible jobs that arrived *while* the batch ran can still reuse
  // the leader's normalization — re-drain until the budget is spent or
  // the queue has no more matches.
  while (options_.batching && sharedNorm != nullptr &&
         group.size() < options_.maxBatch) {
    std::vector<std::shared_ptr<Job>> arrivals = queue_.popCompatible(
        leader->batchKey, options_.maxBatch - group.size());
    if (arrivals.empty()) {
      break;
    }
    for (const std::shared_ptr<Job>& follower : arrivals) {
      group.push_back(follower);
      if (!beginRun(follower)) {
        continue;
      }
      if (runPlanJob(follower, sharedNorm)) {
        ++sharedCount;
      }
    }
  }

  if (sharedCount > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    sharedNormalizationJobs_ += sharedCount;
  }
}

namespace {

/// Re-divide \p result's cross-section (and its σ², when tracked) by
/// \p normalization — the shared follower/warm-hit finish: with
/// matching keys the spliced denominator is bitwise the histogram the
/// job's own MDNorm pass would have produced.
void spliceNormalization(core::ReductionResult& result,
                         const Histogram3D& normalization) {
  result.normalization = normalization;
  if (result.signalErrorSq) {
    HistogramRatio ratio = Histogram3D::divideWithErrors(
        result.signal, *result.signalErrorSq, normalization);
    result.crossSection = std::move(ratio.value);
    result.crossSectionErrorSq = std::move(ratio.errorSq);
  } else {
    result.crossSection = Histogram3D::divide(result.signal, normalization);
  }
}

} // namespace

bool ReductionService::runPlanJob(const std::shared_ptr<Job>& job,
                                  const Histogram3D* sharedNorm) {
  core::ReductionPlan plan = job->request.plan;
  plan.config.hooks.cancel = job->cancel.flag();
  plan.config.hooks.filesCompleted = &job->filesCompleted;
  plan.config.hooks.progress = &job->progressStages;

  // Runtime autotuning: probe the candidate configs on the workload's
  // first file (results discarded), lock the fastest, and record the
  // decision.  Everything downstream — cache keys, batch key, the real
  // run — sees only the locked, concrete config, so a tuned job is
  // indistinguishable from one submitted with that config pinned.
  if (plan.config.autotune.enabled && sharedNorm == nullptr) {
    try {
      const ExperimentSetup tuneSetup(plan.workload);
      const core::AutotuneDecision decision =
          core::autotunePlan(tuneSetup, plan.config);
      plan.config = core::lockAutotuneDecision(plan.config, decision);
      std::lock_guard<std::mutex> lock(mutex_);
      job->autotunedConfig = decision.summary();
      job->batchKey = planBatchKey(plan);
      ++autotunedJobs_;
      latencySamples_["autotune"].push_back(decision.probeSeconds);
    } catch (const std::exception& error) {
      finishJob(job, JobState::Failed, error.what(), nullptr);
      return false;
    }
  }

  // Batch followers already have a better-than-disk normalization in
  // hand; everyone else may consult the persistent cache.
  const std::shared_ptr<cache::NormalizationCache> cache =
      sharedNorm == nullptr && !plan.config.skipNormalization
          ? cacheFor(plan)
          : nullptr;
  // Incremental partial sums are keyed on the synthetic event stream;
  // pre-recorded event files replace that stream, so file-backed plans
  // always run full (cache/batch reuse of the normalization still
  // applies — it never depends on event data).
  const bool incremental = cache != nullptr && plan.config.incremental &&
                           plan.config.ranks == 1 && plan.eventFiles.empty();

  if (sharedNorm != nullptr) {
    plan.config.skipNormalization = true;
    std::lock_guard<std::mutex> lock(mutex_);
    job->sharedNormalization = true;
  }

  try {
    // -- incremental mode: part entries under incrementalKey ----------
    if (incremental) {
      const std::string partKey = incrementalKey(plan);
      const std::size_t nFiles = plan.workload.nFiles;
      std::shared_ptr<const cache::CachedReduction> cached =
          cache->findReduction(partKey);
      // A part entry from a run with the other trackErrors setting
      // cannot seed this one (the key pins trackErrors, so this only
      // guards against hand-edited entries).
      if (cached &&
          cached->signalErrorSq.has_value() != plan.config.trackErrors) {
        cached.reset();
      }

      if (cached && cached->filesReduced == nFiles) {
        // Full replay: every file is already in the cached sums — no
        // pipeline run at all, just the final divide.
        job->filesCompleted.store(nFiles, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          job->cachedNormalization = true;
        }
        // Repeat replays of the same hot-tier entry share one assembled
        // (immutable) result: serving is then O(1) regardless of grid
        // size.  The memo is valid exactly while findReduction keeps
        // returning the same object.
        std::shared_ptr<const core::ReductionResult> replay;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          const auto memo = replayMemos_.find(cached.get());
          if (memo != replayMemos_.end() &&
              memo->second.source.lock() == cached) {
            replay = memo->second.result;
          }
        }
        if (!replay) {
          // Assemble the replayed result in parallel: the final divide
          // and the accumulator copies each stream the full histogram
          // (~MBs) and are independent, so overlapping them makes the
          // assembly cost one histogram pass of wall time, not three.
          // Elementwise work keeps bit-identity regardless of threading.
          std::optional<Histogram3D> signalCopy;
          std::optional<Histogram3D> normCopy;
          std::optional<Histogram3D> errorCopy;
          std::thread signalThread([&] { signalCopy.emplace(cached->signal); });
          std::thread normThread([&] {
            normCopy.emplace(cached->normalization);
            if (cached->signalErrorSq) {
              errorCopy.emplace(*cached->signalErrorSq);
            }
          });
          std::optional<Histogram3D> crossErrorSq;
          std::optional<Histogram3D> crossSection;
          try {
            if (cached->signalErrorSq) {
              HistogramRatio ratio = Histogram3D::divideWithErrors(
                  cached->signal, *cached->signalErrorSq,
                  cached->normalization);
              crossErrorSq = std::move(ratio.errorSq);
              crossSection = std::move(ratio.value);
            } else {
              crossSection =
                  Histogram3D::divide(cached->signal, cached->normalization);
            }
            signalThread.join();
            normThread.join();
          } catch (...) {
            signalThread.join();
            normThread.join();
            throw;
          }
          replay = std::make_shared<const core::ReductionResult>(
              core::ReductionResult{std::move(*signalCopy),
                                    std::move(*normCopy),
                                    std::move(*crossSection),
                                    /*times=*/{},
                                    /*timesSummed=*/{},
                                    /*wallSeconds=*/0.0,
                                    /*deviceStats=*/{},
                                    /*maxIntersectionsEstimate=*/0,
                                    cached->eventsProcessed,
                                    std::move(errorCopy),
                                    std::move(crossErrorSq)});
          std::lock_guard<std::mutex> lock(mutex_);
          for (auto it = replayMemos_.begin(); it != replayMemos_.end();) {
            it = it->second.source.expired() ? replayMemos_.erase(it)
                                             : std::next(it);
          }
          replayMemos_[cached.get()] = {cached, replay};
        }
        finishJob(job, JobState::Done, "", std::move(replay));
        return true;
      }

      ExperimentSetup setup(plan.workload);
      core::ReductionPipeline pipeline(setup, plan.config);
      core::ReductionResult result = [&] {
        if (cached && cached->filesReduced < nFiles) {
          // Delta reduction: seed with the cached accumulators and run
          // only the appended files.
          core::ReductionSeed seed;
          seed.signal = &cached->signal;
          seed.normalization = &cached->normalization;
          seed.signalErrorSq =
              cached->signalErrorSq ? &*cached->signalErrorSq : nullptr;
          seed.filesAlreadyReduced = cached->filesReduced;
          seed.eventsAlreadyProcessed = cached->eventsProcessed;
          core::ReductionResult delta = pipeline.runIncremental(seed);
          std::lock_guard<std::mutex> lock(mutex_);
          job->incrementalRun = true;
          ++incrementalJobs_;
          ++normalizationPasses_; // the delta files' MDNorm pass
          return delta;
        }
        // No usable entry (or the plan shrank, which incremental sums
        // cannot serve): cold run.
        core::ReductionResult cold = pipeline.run();
        std::lock_guard<std::mutex> lock(mutex_);
        ++normalizationPasses_;
        return cold;
      }();
      // Publish the now-current accumulators; the entry covering more
      // files replaces the stale one under the same key.
      const cache::CachedReduction update{nFiles, result.eventsProcessed,
                                          result.signal, result.normalization,
                                          result.signalErrorSq};
      cache->storeReduction(partKey, update);
      finishJob(job, JobState::Done, "",
              std::make_shared<const core::ReductionResult>(
                  std::move(result)));
      return true;
    }

    // -- batch-follower / norm-entry / cold paths ---------------------
    std::shared_ptr<const Histogram3D> cachedNorm;
    if (cache != nullptr) {
      cachedNorm = cache->findNormalization(job->batchKey);
      if (cachedNorm) {
        // Warm: run signal-only (the MDNorm pass is skipped entirely)
        // and divide by the cached denominator below.
        plan.config.skipNormalization = true;
        std::lock_guard<std::mutex> lock(mutex_);
        job->cachedNormalization = true;
      }
    }

    ExperimentSetup setup(plan.workload);
    core::ReductionPipeline pipeline(setup, plan.config);
    core::ReductionResult result = plan.eventFiles.empty()
                                       ? pipeline.run()
                                       : pipeline.runFromRawFiles(
                                             plan.eventFiles);
    if (sharedNorm != nullptr) {
      spliceNormalization(result, *sharedNorm);
    } else if (cachedNorm) {
      spliceNormalization(result, *cachedNorm);
    } else {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++normalizationPasses_;
      }
      if (cache != nullptr && !plan.config.skipNormalization) {
        cache->storeNormalization(job->batchKey, result.normalization);
      }
    }
    finishJob(job, JobState::Done, "",
              std::make_shared<const core::ReductionResult>(
                  std::move(result)));
    return true;
  } catch (const Cancelled& cancelledError) {
    finishJob(job, JobState::Cancelled, cancelledError.what(), nullptr);
  } catch (const std::exception& error) {
    finishJob(job, JobState::Failed, error.what(), nullptr);
  }
  return false;
}

void ReductionService::runLiveJob(const std::shared_ptr<Job>& job) {
  const core::ReductionPlan& plan = job->request.plan;
  try {
    ExperimentSetup setup(plan.workload);
    const EventGenerator generator = setup.makeGenerator();
    stream::EventChannel channel(options_.liveChannelCapacity);
    stream::LiveReducer reducer(setup, Executor(plan.config.backend),
                                plan.config.convert);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto control = std::make_shared<LiveControl>();
      control->channel = &channel;
      control->reducer = &reducer;
      liveControls_.emplace(job->id, std::move(control));
      // A cancel that landed before registration could not reach the
      // channel; apply it now under the same lock so no request is lost.
      if (job->cancel.cancelRequested()) {
        reducer.requestStop();
        channel.close();
      }
    }
    std::thread producer([&generator, &channel] {
      try {
        stream::DaqSimulator(generator).streamAllAndClose(channel);
      } catch (const Error&) {
        // Channel closed mid-stream by a cancellation — expected.
      }
    });
    stream::LiveStats stats;
    try {
      stats = reducer.consume(channel);
    } catch (...) {
      channel.close();
      producer.join();
      std::lock_guard<std::mutex> lock(mutex_);
      liveControls_.erase(job->id);
      throw;
    }
    channel.close();
    producer.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      liveControls_.erase(job->id);
    }
    if (job->cancel.cancelRequested()) {
      finishJob(job, JobState::Cancelled, "cancelled during live reduction",
                nullptr);
      return;
    }
    stream::LiveSnapshot snapshot = reducer.snapshot();
    job->filesCompleted.store(snapshot.stats.runsReduced,
                              std::memory_order_relaxed);
    core::ReductionResult result{std::move(snapshot.signal),
                                 std::move(snapshot.normalization),
                                 std::move(snapshot.crossSection),
                                 /*times=*/{},
                                 /*timesSummed=*/{},
                                 /*wallSeconds=*/0.0,
                                 /*deviceStats=*/{},
                                 /*maxIntersectionsEstimate=*/0,
                                 /*eventsProcessed=*/stats.eventsConsumed,
                                 /*signalErrorSq=*/std::nullopt,
                                 /*crossSectionErrorSq=*/std::nullopt};
    finishJob(job, JobState::Done, "",
              std::make_shared<const core::ReductionResult>(
                  std::move(result)));
  } catch (const std::exception& error) {
    finishJob(job, JobState::Failed, error.what(), nullptr);
  }
}

} // namespace vates::service
