#include "vates/service/wire.hpp"

#include "vates/support/error.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vates::service {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
    case '"':  out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buffer;
      } else {
        out += c;
      }
    }
  }
  return out;
}

std::string jsonQuote(const std::string& text) {
  return '"' + jsonEscape(text) + '"';
}

std::string jsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null"; // JSON has no NaN/inf
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

JsonObject& JsonObject::append(const std::string& key,
                               const std::string& rendered) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += jsonQuote(key);
  body_ += ':';
  body_ += rendered;
  return *this;
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::string& value) {
  return append(key, jsonQuote(value));
}

JsonObject& JsonObject::field(const std::string& key, const char* value) {
  return append(key, jsonQuote(value));
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  return append(key, jsonNumber(value));
}

JsonObject& JsonObject::field(const std::string& key, std::uint64_t value) {
  return append(key, std::to_string(value));
}

JsonObject& JsonObject::field(const std::string& key, std::int64_t value) {
  return append(key, std::to_string(value));
}

JsonObject& JsonObject::field(const std::string& key, bool value) {
  return append(key, value ? "true" : "false");
}

JsonObject& JsonObject::fieldRaw(const std::string& key,
                                 const std::string& rawJson) {
  return append(key, rawJson);
}

std::string JsonObject::str() const { return '{' + body_ + '}'; }

namespace {

/// Single-pass scanner over one line of flat JSON.
class Scanner {
public:
  explicit Scanner(const std::string& line) : line_(line) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON parse error at position " +
                          std::to_string(pos_) + ": " + what);
  }

  void skipSpace() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t' || line_[pos_] == '\r' ||
            line_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool atEnd() {
    skipSpace();
    return pos_ >= line_.size();
  }

  char peek() {
    skipSpace();
    if (pos_ >= line_.size()) {
      fail("unexpected end of input");
    }
    return line_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + line_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skipSpace();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Parse a quoted string with escapes; returns the unescaped text.
  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= line_.size()) {
        fail("unterminated string");
      }
      const char c = line_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= line_.size()) {
        fail("unterminated escape");
      }
      const char escape = line_[pos_++];
      switch (escape) {
      case '"':  out += '"'; break;
      case '\\': out += '\\'; break;
      case '/':  out += '/'; break;
      case 'b':  out += '\b'; break;
      case 'f':  out += '\f'; break;
      case 'n':  out += '\n'; break;
      case 'r':  out += '\r'; break;
      case 't':  out += '\t'; break;
      case 'u':  appendCodePoint(out, parseHex4()); break;
      default:   fail(std::string("unknown escape '\\") + escape + "'");
      }
    }
  }

  /// Parse an unquoted scalar token (number / true / false / null) and
  /// return its raw text (null renders as empty).
  std::string parseScalar() {
    const char c = peek();
    if (c == '{' || c == '[') {
      fail("nested objects/arrays are not supported by this wire format");
    }
    const std::size_t start = pos_;
    while (pos_ < line_.size()) {
      const char t = line_[pos_];
      if (t == ',' || t == '}' || t == ' ' || t == '\t' || t == '\r' ||
          t == '\n') {
        break;
      }
      ++pos_;
    }
    const std::string token = line_.substr(start, pos_ - start);
    if (token == "null") {
      return "";
    }
    if (token == "true" || token == "false") {
      return token;
    }
    // Validate as a JSON number.
    char* end = nullptr;
    (void)std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      fail("invalid value token '" + token + "'");
    }
    return token;
  }

private:
  unsigned parseHex4() {
    if (pos_ + 4 > line_.size()) {
      fail("truncated \\u escape");
    }
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = line_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  /// UTF-8 encode one \uXXXX code point, combining surrogate pairs.
  void appendCodePoint(std::string& out, unsigned code) {
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a \uXXXX low surrogate must follow.
      if (pos_ + 1 < line_.size() && line_[pos_] == '\\' &&
          line_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parseHex4();
        if (low < 0xDC00 || low > 0xDFFF) {
          fail("invalid low surrogate");
        }
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  const std::string& line_;
  std::size_t pos_ = 0;
};

} // namespace

std::map<std::string, std::string> parseFlatObject(const std::string& line) {
  Scanner scanner(line);
  std::map<std::string, std::string> fields;
  scanner.expect('{');
  if (!scanner.consume('}')) {
    while (true) {
      if (scanner.peek() != '"') {
        scanner.fail("expected a quoted key");
      }
      const std::string key = scanner.parseString();
      if (fields.count(key) != 0) {
        scanner.fail("duplicate key \"" + key + "\"");
      }
      scanner.expect(':');
      std::string value;
      if (scanner.peek() == '"') {
        value = scanner.parseString();
      } else {
        value = scanner.parseScalar();
      }
      fields.emplace(key, std::move(value));
      if (scanner.consume('}')) {
        break;
      }
      scanner.expect(',');
    }
  }
  if (!scanner.atEnd()) {
    scanner.fail("trailing content after object");
  }
  return fields;
}

} // namespace vates::service
