#include "vates/service/job.hpp"

#include <cstdio>
#include <sstream>

namespace vates::service {

// -- normalizationKey field-list audit --------------------------------
//
// The persistent cache trusts the key completely: two plans with equal
// keys are served the same bits.  A field added to any of these structs
// without a matching line in normalizationKey()/incrementalKey() would
// silently alias cache entries, so the exact struct sizes are pinned
// here — adding a field trips the assert and forces whoever adds it to
// audit the key functions (and bump kCacheFormatVersion when the new
// field affects stored bits).  Sizes are ABI-specific; the guard runs
// on the x86-64 + libstdc++ configuration CI builds.
#if defined(__x86_64__) && defined(__GLIBCXX__)
static_assert(sizeof(MDNormOptions) == 48,
              "MDNormOptions changed: audit normalizationKey() (search/"
              "traversal/accumulate/simd are serialized) and update this "
              "pinned size");
static_assert(sizeof(AccumulateOptions) == 32,
              "AccumulateOptions changed: audit normalizationKey()/"
              "incrementalKey() (strategy/budget/tile/sharedGrid are "
              "serialized) and update this pinned size");
static_assert(sizeof(core::OverlapOptions) == 16,
              "OverlapOptions changed: audit normalizationKey() (mode is "
              "serialized; prefetchDepth is order-neutral) and update this "
              "pinned size");
static_assert(sizeof(ConvertOptions) == 2,
              "ConvertOptions changed: audit incrementalKey() (lorentz/"
              "filter_band are serialized) and update this pinned size");
static_assert(sizeof(WorkloadSpec) == 456,
              "WorkloadSpec changed: audit normalizationKey() (geometry/"
              "lattice/symmetry/goniometer/flux/grid/mask fields) and "
              "incrementalKey() (seed/eventsPerFile/signal-shape fields), "
              "then update this pinned size");
#endif

const char* jobStateName(JobState state) noexcept {
  switch (state) {
  case JobState::Queued:    return "queued";
  case JobState::Running:   return "running";
  case JobState::Done:      return "done";
  case JobState::Failed:    return "failed";
  case JobState::Cancelled: return "cancelled";
  case JobState::Expired:   return "expired";
  }
  return "?";
}

bool jobStateTerminal(JobState state) noexcept {
  switch (state) {
  case JobState::Queued:
  case JobState::Running:
    return false;
  case JobState::Done:
  case JobState::Failed:
  case JobState::Cancelled:
  case JobState::Expired:
    return true;
  }
  return false;
}

const char* jobKindName(JobKind kind) noexcept {
  switch (kind) {
  case JobKind::Plan: return "plan";
  case JobKind::Live: return "live";
  }
  return "?";
}

namespace {

/// Round-trippable double rendering: equal keys must mean equal bits,
/// so every floating field is serialized at full precision.
void putDouble(std::ostringstream& os, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  os << buffer << ';';
}

void putV3(std::ostringstream& os, const V3& v) {
  putDouble(os, v.x);
  putDouble(os, v.y);
  putDouble(os, v.z);
}

} // namespace

std::string normalizationKey(const core::ReductionPlan& plan) {
  const WorkloadSpec& w = plan.workload;
  const core::ReductionConfig& c = plan.config;
  std::ostringstream os;

  // Workload fields the normalization integral reads: detector
  // geometry, orientation schedule, symmetry, flux band, charge, and
  // the output grid it is accumulated on.
  os << "inst=" << w.instrument << ';' << "ndet=" << w.nDetectors << ';'
     << "files=" << w.nFiles << ';';
  putDouble(os, w.latticeA);
  putDouble(os, w.latticeB);
  putDouble(os, w.latticeC);
  putDouble(os, w.latticeAlpha);
  putDouble(os, w.latticeBeta);
  putDouble(os, w.latticeGamma);
  putV3(os, w.uVector);
  putV3(os, w.vVector);
  os << "pg=" << w.pointGroup << ';';
  putDouble(os, w.omegaStartDeg);
  putDouble(os, w.omegaStepDeg);
  putDouble(os, w.protonCharge);
  putDouble(os, w.lambdaMin);
  putDouble(os, w.lambdaMax);
  os << "bins=" << w.bins[0] << ',' << w.bins[1] << ',' << w.bins[2] << ';';
  for (int axis = 0; axis < 3; ++axis) {
    putDouble(os, w.extentMin[static_cast<std::size_t>(axis)]);
    putDouble(os, w.extentMax[static_cast<std::size_t>(axis)]);
  }
  putV3(os, w.projectionU);
  putV3(os, w.projectionV);
  putV3(os, w.projectionW);

  // Detector masking removes pixels from the normalization integral.
  // Serialized only when active so pre-mask keys (and the "same grid,
  // different event seed" batching guarantee for unmasked plans) are
  // unchanged; an active fractional mask pins the *effective* mask seed,
  // which defaults to the event seed.
  if (w.maskFraction > 0.0) {
    os << "mask=";
    putDouble(os, w.maskFraction);
    if (w.maskFraction < 1.0) {
      os << "mseed=" << w.effectiveMaskSeed() << ';';
    }
  }

  // Execution-config fields that change the normalization's
  // floating-point accumulation order (bit-identity, not just physics).
  os << "be=" << backendName(c.backend) << ';' << "ranks=" << c.ranks << ';'
     << "trav=" << traversalName(c.mdnorm.traversal) << ';'
     << "search=" << static_cast<int>(c.mdnorm.search) << ';'
     << "acc=" << accumulateStrategyName(c.mdnorm.accumulate.strategy) << ';'
     << "accbudget=" << c.mdnorm.accumulate.replicaBudgetBytes << ';'
     << "acctile=" << c.mdnorm.accumulate.tileCapacity << ';'
     << "accshared=" << c.mdnorm.accumulate.sharedGrid << ';'
     << "simd=" << simdModeName(c.mdnorm.simd) << ';'
     << "ov=" << overlapModeName(c.overlap.mode) << ';';
  return os.str();
}

std::string incrementalKey(const core::ReductionPlan& plan) {
  // The normalization sub-key with nFiles canonicalized: an incremental
  // entry records how many files its sums cover, so the key must stay
  // stable while the plan's file count grows.
  core::ReductionPlan canonical = plan;
  canonical.workload.nFiles = 0;

  const WorkloadSpec& w = plan.workload;
  const core::ReductionConfig& c = plan.config;
  std::ostringstream os;
  os << "norm{" << normalizationKey(canonical) << "}";

  // Data-affecting fields the normalization key deliberately excludes:
  // everything that shapes the per-file event streams and the signal
  // (and σ²) accumulation order.
  os << "seed=" << w.seed << ';' << "epf=" << w.eventsPerFile << ';'
     << "cent=" << centeringSymbol(w.centering) << ';';
  putDouble(os, w.braggAmplitude);
  putDouble(os, w.braggSigma);
  putDouble(os, w.diffuseBackground);
  os << "load=" << (c.loadMode == core::LoadMode::RawTof ? "raw" : "q") << ';'
     << "lorentz=" << c.convert.lorentzCorrection << ';'
     << "band=" << c.convert.filterMomentumBand << ';'
     << "err=" << c.trackErrors << ';'
     << "bacc=" << accumulateStrategyName(c.binmdAccumulate.strategy) << ';'
     << "baccbudget=" << c.binmdAccumulate.replicaBudgetBytes << ';'
     << "bacctile=" << c.binmdAccumulate.tileCapacity << ';'
     << "baccshared=" << c.binmdAccumulate.sharedGrid << ';';
  return os.str();
}

} // namespace vates::service
