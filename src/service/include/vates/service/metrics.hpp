#pragma once
/// \file metrics.hpp
/// Operational telemetry of the reduction service: admission counters,
/// terminal-state counters, shared-grid batching effectiveness, and
/// per-stage latency distributions — the numbers a facility operator
/// watches to size workers and queue depth.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vates::service {

/// Summary of one latency population (seconds).
struct LatencyStats {
  std::size_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double total = 0.0;
};

/// Nearest-rank percentile summary of \p seconds (consumed; sorted
/// internally).  Empty input yields all zeros.
LatencyStats summarizeLatencies(std::vector<double> seconds);

/// Per-stream counters of one live shm ingestion session (drop / lag /
/// latency — the backpressure health of a beamline feed).
struct StreamMetrics {
  std::string name;    ///< session name (journal verbs address it)
  std::string shmName; ///< POSIX shm segment backing the ring
  std::uint64_t framesIngested = 0;
  std::uint64_t pulsesIngested = 0;
  std::uint64_t eventsIngested = 0;
  std::uint64_t bytesIngested = 0;
  std::uint64_t crcFailures = 0;
  std::uint64_t overruns = 0;
  std::uint64_t framesDropped = 0;
  std::uint64_t runsDropped = 0;
  std::uint64_t producerRestarts = 0;
  std::uint64_t lagFrames = 0;
  std::uint64_t maxLagFrames = 0;
  std::uint64_t runsReduced = 0;
  bool endOfStream = false;
  bool producerLost = false;
  /// Publish → ingest age of frames (ring-buffered sample population).
  LatencyStats ingestLatency;

  /// Render as a JSON object (one element of metrics' "streams" array).
  std::string toJson() const;
};

/// A point-in-time copy of the service's counters.
struct ServiceMetrics {
  // -- capacity ------------------------------------------------------
  std::size_t workers = 0;
  std::size_t queueCapacity = 0;
  std::size_t queueDepth = 0;    ///< queued right now
  std::size_t maxQueueDepth = 0; ///< high-water mark since start
  std::size_t running = 0;       ///< jobs executing right now

  // -- admission -----------------------------------------------------
  std::uint64_t submitted = 0; ///< submit() calls, admitted or not
  std::uint64_t admitted = 0;
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedClosed = 0;
  std::uint64_t rejectedInvalid = 0;

  // -- terminal states -----------------------------------------------
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;

  // -- shared-grid batching ------------------------------------------
  std::uint64_t batches = 0; ///< leader+followers groups executed
  /// Plan jobs that completed as batch followers, reusing a leader's
  /// normalization instead of running their own MDNorm pass.
  std::uint64_t sharedNormalizationJobs = 0;
  /// Full MDNorm normalization passes actually executed.
  std::uint64_t normalizationPasses = 0;

  /// Fraction of completed plan-job normalizations served by a batch
  /// leader instead of computed: shared / (shared + passes).
  double batchHitRate() const noexcept;

  // -- persistent cache ----------------------------------------------
  /// Plan jobs served (fully or partially) from the on-disk cache: a
  /// normalization-entry hit or an incremental partial-state hit.
  std::uint64_t cacheHits = 0;
  /// Subset of cacheHits served from the in-memory hot tier (no disk
  /// read or CRC pass — the entry was already deserialized).
  std::uint64_t cacheMemoryHits = 0;
  /// Plan jobs that looked in the cache and fell through to cold
  /// compute.  Jobs with no cache configured count in neither.
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheStores = 0;        ///< entries published
  std::uint64_t cacheStoreFailures = 0; ///< unwritable dir / ENOSPC / races
  std::uint64_t cacheEvictions = 0;     ///< LRU byte-budget evictions
  std::uint64_t cacheInvalidEntries = 0;///< damaged/stale entries dropped
  std::uint64_t cacheBytes = 0;         ///< resident entry bytes right now
  std::uint64_t cacheEntries = 0;       ///< resident entry count right now
  /// Plan jobs that ran as incremental delta reductions.
  std::uint64_t incrementalJobs = 0;

  // -- runtime autotuning --------------------------------------------
  /// Plan jobs whose execution config was locked by the runtime
  /// autotuner (probe on the first file, fastest candidate pinned for
  /// the rest of the job).  The probe wall time feeds the "autotune"
  /// latency population.
  std::uint64_t autotunedJobs = 0;

  /// Fraction of cache lookups that hit: hits / (hits + misses).
  double cacheHitRate() const noexcept;

  // -- latency -------------------------------------------------------
  /// "queue-wait" (submit → start) and "run" (start → finish), plus one
  /// entry per pipeline stage ("MDNorm", "BinMD", ...) fed from
  /// completed jobs' stage totals.  Plan jobs additionally split their
  /// run latency into "run-warm" (normalization or partial state served
  /// from cache/batch) vs "run-cold" (full compute) — the cold-vs-warm
  /// p50/p95 a facility operator compares.
  std::map<std::string, LatencyStats> latency;

  // -- live ingestion ------------------------------------------------
  /// One entry per attached live shm stream (filled in by the daemon
  /// owning the sessions; empty when none are attached).
  std::vector<StreamMetrics> streams;

  /// Render as a JSON object (nested "latency" object keyed by stage,
  /// "streams" array of per-stream counters).
  std::string toJson() const;
};

} // namespace vates::service
