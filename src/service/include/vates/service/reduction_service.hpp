#pragma once
/// \file reduction_service.hpp
/// The multi-tenant reduction service: a fixed worker pool draining a
/// bounded priority queue of reduction jobs through the existing
/// pipeline — the in-process shape of the paper's facility deployment,
/// where many SNS/HFIR users share one OLCF-side reduction backend.
///
/// Three properties define the design:
///
///  1. *Admission control, never blocking.*  submit() always returns
///     immediately: either an id, or a rejection with a reason
///     ("queue-full", "closed", "invalid: ...").  A full queue sheds
///     load at the front door instead of hanging user sessions.
///
///  2. *Shared-grid batching.*  When a worker pops a plan job it also
///     drains queued jobs with the same normalization key (same
///     instrument geometry, lattice, symmetry, goniometer schedule,
///     flux band, grid, and accumulation-order config — see
///     normalizationKey()).  The leader runs the full pipeline once;
///     followers run signal-only (ReductionConfig::skipNormalization)
///     and divide by the leader's normalization.  Because the key pins
///     every input *and* every accumulation-order knob, each follower's
///     cross-section is bit-identical to what its own full run would
///     have produced — the MDNorm pre-pass is simply not paid N times.
///
///  3. *Cooperative cancellation.*  cancel() removes queued jobs
///     immediately; running plan jobs observe a shared flag between
///     files (the pipeline then throws vates::Cancelled, never exposing
///     partial sums), and running live jobs get their channel closed
///     and reducer stopped.
///
/// The service is in-process and thread-safe: any thread may submit,
/// query, cancel, or wait.  tools/vates_serve wraps it in an NDJSON
/// daemon for out-of-process use.

#include "vates/cache/normalization_cache.hpp"
#include "vates/service/job.hpp"
#include "vates/service/job_queue.hpp"
#include "vates/service/metrics.hpp"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace vates::service {

/// Service sizing knobs.
struct ServiceOptions {
  std::size_t workers = 2;       ///< concurrent reduction executors
  std::size_t queueCapacity = 16;///< admission bound (queued, not running)
  /// Largest shared-grid batch (leader + followers); 1 disables
  /// coalescing even when batching is on.
  std::size_t maxBatch = 8;
  bool batching = true;
  /// Packets in flight for live jobs' DAQ → reducer channel.
  std::size_t liveChannelCapacity = 256;
  /// Persistent-cache directory used by plan jobs whose plan does not
  /// name its own `cache_dir`; empty (the default) disables caching for
  /// such jobs.  VATES_CACHE_DIR overrides both.
  std::string defaultCacheDir;
  /// Byte budget for caches opened through defaultCacheDir;
  /// VATES_CACHE_BUDGET overrides.
  std::uint64_t defaultCacheBudgetBytes = std::uint64_t{256} << 20;

  /// Defaults overridden by VATES_SERVICE_WORKERS,
  /// VATES_SERVICE_QUEUE, and VATES_SERVICE_BATCH (0 disables
  /// batching); malformed values are ignored.  (VATES_CACHE_DIR /
  /// VATES_CACHE_BUDGET are applied later, per cache open — see
  /// cache::CacheConfig::withEnvOverrides.)
  static ServiceOptions fromEnv();
};

/// What submit() decided.
struct SubmitReceipt {
  bool accepted = false;
  std::uint64_t id = 0; ///< valid when accepted
  std::string reason;   ///< rejection reason when not accepted
};

class ReductionService {
public:
  explicit ReductionService(ServiceOptions options = {});

  /// Equivalent to shutdown(false): queued jobs are cancelled, running
  /// jobs are asked to cancel, workers are joined.
  ~ReductionService();

  ReductionService(const ReductionService&) = delete;
  ReductionService& operator=(const ReductionService&) = delete;

  const ServiceOptions& options() const noexcept { return options_; }

  /// Admit a job or reject it with a reason; never blocks on queue
  /// space.  Accepted jobs are queued for the worker pool.
  SubmitReceipt submit(JobRequest request);

  /// Point-in-time status of a job (any state); nullopt for unknown
  /// ids.
  std::optional<JobStatus> status(std::uint64_t id) const;

  /// The terminal outcome, or nullptr while the job is still queued or
  /// running (and for unknown ids).
  std::shared_ptr<const JobOutcome> outcome(std::uint64_t id) const;

  /// Request cancellation.  Queued jobs transition to Cancelled
  /// immediately; running jobs are signalled cooperatively and
  /// transition once the pipeline observes the flag (between files).
  /// Returns false for unknown or already-terminal jobs.
  bool cancel(std::uint64_t id);

  /// Block until the job reaches a terminal state; returns its outcome
  /// (nullptr for unknown ids).
  std::shared_ptr<const JobOutcome> wait(std::uint64_t id);

  /// Statuses of every job the service has seen, submission order.
  std::vector<JobStatus> jobs() const;

  /// Close admission and stop the workers.  With \p drainQueued the
  /// pool finishes everything already admitted; without it, queued
  /// jobs are cancelled and running jobs are asked to cancel.
  /// Idempotent; blocks until the workers exit.
  void shutdown(bool drainQueued = true);

  /// Snapshot of the operational counters.
  ServiceMetrics metrics() const;

  /// Aggregated counters of every cache directory this service has
  /// opened (hits/misses/stores/evictions + resident footprint).
  cache::CacheStats cacheStats() const;

  /// Remove every entry from every opened cache directory; returns the
  /// number of entries removed.
  std::size_t clearCaches();

private:
  struct LiveControl; // running live job's channel + reducer handles

  void workerLoop();
  void process(const std::shared_ptr<Job>& leader);
  /// Run one plan job's pipeline; with \p sharedNorm the job runs
  /// signal-only and divides by it.  Returns true when the job finished
  /// Done (false: Failed/Cancelled).
  bool runPlanJob(const std::shared_ptr<Job>& job,
                  const Histogram3D* sharedNorm);
  void runLiveJob(const std::shared_ptr<Job>& job);

  /// The cache for \p plan's effective directory (plan cache_dir, else
  /// the service default, else VATES_CACHE_DIR), opening it on first
  /// use; nullptr when no directory is configured.  One instance per
  /// directory is shared by all jobs for LRU/counter coherence.
  std::shared_ptr<cache::NormalizationCache>
  cacheFor(const core::ReductionPlan& plan);

  /// Start-of-run bookkeeping: deadline/cancel gate + Running
  /// transition.  Returns false when the job was finished early
  /// (Expired/Cancelled) instead of started.
  bool beginRun(const std::shared_ptr<Job>& job);
  void finishJob(const std::shared_ptr<Job>& job, JobState state,
                 std::string error,
                 std::shared_ptr<const core::ReductionResult> result);

  JobStatus statusLocked(const Job& job) const;

  const ServiceOptions options_;
  JobQueue queue_;

  /// Serializes shutdown() callers (thread join is not reentrant).
  std::mutex shutdownMutex_;
  mutable std::mutex mutex_;
  std::condition_variable terminal_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobsById_;
  std::map<std::uint64_t, std::shared_ptr<LiveControl>> liveControls_;
  std::uint64_t nextId_ = 1;
  bool shutdown_ = false;
  std::size_t running_ = 0;

  // -- counters (guarded by mutex_) ------------------------------------
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejectedQueueFull_ = 0;
  std::uint64_t rejectedClosed_ = 0;
  std::uint64_t rejectedInvalid_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t sharedNormalizationJobs_ = 0;
  std::uint64_t normalizationPasses_ = 0;
  std::uint64_t incrementalJobs_ = 0;
  std::uint64_t autotunedJobs_ = 0;
  std::map<std::string, std::vector<double>> latencySamples_;

  /// Opened caches, keyed by resolved directory (guarded by its own
  /// mutex so opening/scanning a directory never stalls status calls).
  mutable std::mutex cachesMutex_;
  std::map<std::string, std::shared_ptr<cache::NormalizationCache>> caches_;

  /// Memoized full-replay results, keyed by the hot-tier entry they
  /// were assembled from: jobs replaying the same cached accumulators
  /// share one immutable ReductionResult instead of each re-paying the
  /// divide + histogram copies.  The weak_ptr pins a memo to the exact
  /// cached object — once the hot tier drops or replaces that entry,
  /// lock() no longer matches the freshly found pointer and the memo is
  /// discarded (expired memos are also swept on insert).  Guarded by
  /// mutex_.
  struct ReplayMemo {
    std::weak_ptr<const cache::CachedReduction> source;
    std::shared_ptr<const core::ReductionResult> result;
  };
  std::map<const void*, ReplayMemo> replayMemos_;

  std::vector<std::thread> workers_;
};

} // namespace vates::service
