#pragma once
/// \file job_queue.hpp
/// Bounded, thread-safe priority queue of reduction jobs — the
/// admission-controlled front door of the service.
///
/// Admission is non-blocking by design: when the queue is full,
/// tryPush() rejects with a reason instead of blocking the caller — a
/// facility front end must tell the user "resubmit later" rather than
/// hang their session (load shedding, not backpressure, at the user
/// boundary).  Ordering is priority-major (higher first), submission
/// FIFO within one priority.  Workers may additionally drain queued
/// jobs that share a batch key with the one they just popped — the
/// shared-grid batching hook — which deliberately lifts same-key jobs
/// over head-of-line ones: riding an already-paid normalization is
/// cheaper for *everyone* in the queue.

#include "vates/service/job.hpp"

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vates::service {

/// Outcome of a tryPush() admission attempt.
enum class Admission : int {
  Accepted = 0,  ///< enqueued
  QueueFull = 1, ///< bounded capacity reached — resubmit later
  Closed = 2,    ///< queue closed (service shutting down)
};

/// "accepted", "queue-full", "closed".
const char* admissionName(Admission admission) noexcept;

class JobQueue {
public:
  /// \p capacity >= 1 queued jobs.
  explicit JobQueue(std::size_t capacity);

  std::size_t capacity() const noexcept { return capacity_; }

  /// Non-blocking admission: enqueue or reject with a reason.
  Admission tryPush(std::shared_ptr<Job> job);

  /// Block until a job is available and return the best one (highest
  /// priority, FIFO within priority).  Returns nullptr once the queue
  /// is closed and — when close() asked for a drain — empty.
  std::shared_ptr<Job> pop();

  /// Non-blocking: remove and return up to \p maxJobs queued jobs whose
  /// batchKey equals \p key, in submission order.  Used by workers to
  /// coalesce a shared-grid batch around a just-popped leader.
  std::vector<std::shared_ptr<Job>> popCompatible(const std::string& key,
                                                  std::size_t maxJobs);

  /// Remove a specific queued job (cancellation while queued).  Returns
  /// it, or nullptr when it is no longer queued.
  std::shared_ptr<Job> remove(std::uint64_t id);

  /// Close the queue: subsequent tryPush() returns Closed.  With
  /// \p drainRemaining, blocked pop() calls keep serving the remaining
  /// jobs and return nullptr only once empty; without it, pop() returns
  /// nullptr immediately and the evicted jobs are handed back to the
  /// caller (to be marked cancelled).  Idempotent.
  std::vector<std::shared_ptr<Job>> close(bool drainRemaining);

  bool closed() const;
  std::size_t depth() const;
  /// Highest queue depth ever observed (admission-pressure telemetry).
  std::size_t maxDepth() const;

private:
  /// Index of the best job (priority-major, sequence-minor); npos when
  /// empty.  Caller holds the mutex.
  std::size_t bestIndex() const noexcept;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::vector<std::shared_ptr<Job>> jobs_;
  std::size_t maxDepth_ = 0;
  bool closed_ = false;
  bool drainOnClose_ = true;
};

} // namespace vates::service
