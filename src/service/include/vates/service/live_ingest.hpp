#pragma once
/// \file live_ingest.hpp
/// One live shm ingestion session: an ShmEventSource drain thread, an
/// EventChannel, and a LiveReducer consumer thread, glued together so a
/// daemon (vates_serve's live verbs) can attach to a beamline feed,
/// serve concurrent snapshots while events keep flowing, and stop with
/// a final reduced result.

#include "vates/core/plan.hpp"
#include "vates/service/metrics.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/stream/live_reducer.hpp"
#include "vates/transport/shm_event_source.hpp"

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

namespace vates::service {

struct LiveIngestOptions {
  /// Ring attachment (shm name, timeouts, start position, producer-loss
  /// policy).  Typically transport::ReaderConfig::withEnvOverrides plus
  /// request fields.
  transport::SourceConfig source;
  /// In-process channel between the drain and the reducer.
  std::size_t channelCapacity = 256;
  /// Byte budget of the channel (0: packet-count bound only).  Bounds
  /// the daemon's memory when the reducer falls behind; backpressure
  /// then propagates to ring lag and, under drop-oldest, to drops.
  std::size_t channelByteBudget = std::size_t{128} << 20;
};

/// Owns the two threads of a live session.  snapshot(), streamMetrics()
/// and stop() are safe to call from any number of client threads while
/// ingestion continues — multi-client concurrent snapshots are the
/// point.
class LiveIngestSession {
public:
  /// Builds the reduction state from \p plan (workload geometry,
  /// backend, convert options) and starts both threads.  Attachment
  /// happens asynchronously on the drain thread; a failed attach
  /// surfaces through error() / finished(), not the constructor.
  LiveIngestSession(std::string name, const core::ReductionPlan& plan,
                    LiveIngestOptions options);
  ~LiveIngestSession();

  LiveIngestSession(const LiveIngestSession&) = delete;
  LiveIngestSession& operator=(const LiveIngestSession&) = delete;

  const std::string& name() const noexcept { return name_; }
  const std::string& shmName() const noexcept {
    return options_.source.reader.name;
  }

  /// Thread-safe copy of the evolving reduced state.
  stream::LiveSnapshot snapshot() const;

  /// Drop / lag / latency counters for the metrics verb.
  StreamMetrics streamMetrics() const;

  /// Both threads have exited (end of stream, producer lost, stop, or
  /// error).
  bool finished() const noexcept;

  /// First ingest/reduce failure, or empty.
  std::string error() const;

  /// Idempotent: stop the drain and the reducer, join both threads, and
  /// return the final snapshot.
  stream::LiveSnapshot stop();

private:
  void noteError(const std::string& what);

  std::string name_;
  LiveIngestOptions options_;
  ExperimentSetup setup_;
  stream::EventChannel channel_;
  stream::LiveReducer reducer_;
  transport::ShmEventSource source_;

  std::atomic<bool> ingestDone_{false};
  std::atomic<bool> reduceDone_{false};
  mutable std::mutex errorMutex_;
  std::string error_;

  std::mutex stopMutex_; ///< serializes stop() callers around the joins
  std::thread ingestThread_;
  std::thread reduceThread_;
};

} // namespace vates::service
