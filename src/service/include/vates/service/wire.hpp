#pragma once
/// \file wire.hpp
/// The service's newline-delimited JSON wire format.
///
/// vates_serve reads one JSON object per line from a FIFO/stdin and
/// appends one JSON object per event to a journal file; vates_submit
/// writes the former and tails the latter.  The dialect is deliberately
/// flat — one object, scalar values only — so this hand-rolled
/// scanner (no external JSON dependency exists in this environment)
/// stays small and obviously correct.  Nested objects/arrays are
/// rejected with a line-positioned error.
///
/// JsonObject is the matching writer: insertion-ordered fields, correct
/// string escaping, full-precision numbers, and a fieldRaw() escape
/// hatch so composite documents (metrics with nested sections) can
/// still be assembled from the same primitives.

#include <cstdint>
#include <map>
#include <string>

namespace vates::service {

/// Backslash-escape \p text for embedding inside a JSON string literal
/// (quotes, backslash, control characters as \uXXXX).
std::string jsonEscape(const std::string& text);

/// Quoted, escaped JSON string literal.
std::string jsonQuote(const std::string& text);

/// Full-precision JSON number; NaN/inf (not representable in JSON)
/// render as null.
std::string jsonNumber(double value);

/// Insertion-ordered flat JSON object builder.
class JsonObject {
public:
  JsonObject& field(const std::string& key, const std::string& value);
  JsonObject& field(const std::string& key, const char* value);
  JsonObject& field(const std::string& key, double value);
  JsonObject& field(const std::string& key, std::uint64_t value);
  JsonObject& field(const std::string& key, std::int64_t value);
  JsonObject& field(const std::string& key, bool value);
  /// Append pre-rendered JSON (a nested object/array) under \p key.
  JsonObject& fieldRaw(const std::string& key, const std::string& rawJson);

  /// Render "{...}".
  std::string str() const;

private:
  JsonObject& append(const std::string& key, const std::string& rendered);
  std::string body_;
};

/// Parse one flat JSON object — string/number/boolean/null values only.
/// Returns key → value text, with string values unescaped and null
/// rendered as an empty string.  Throws InvalidArgument (naming the
/// character position) on malformed input, nesting, or duplicate keys.
std::map<std::string, std::string> parseFlatObject(const std::string& line);

} // namespace vates::service
