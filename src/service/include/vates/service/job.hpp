#pragma once
/// \file job.hpp
/// Reduction jobs — the unit of work of the multi-tenant service.
///
/// The paper's deployment model is a *facility service*: SNS/HFIR users
/// submit reductions that run on OLCF hardware (the data-management
/// layer of Godoy et al., arXiv:2101.02591, sitting between scientists
/// and the kernels the way Mantid does).  A JobRequest is one user's
/// reduction — a plan plus scheduling metadata (priority, deadline,
/// correlation tag) — and a Job is the service's record of it moving
/// through the lifecycle
///
///   submit → Queued → Running → Done / Failed / Cancelled / Expired
///
/// with cooperative cancellation (a shared flag the pipeline polls
/// between runs) and live progress (files completed, per-stage times)
/// observable at every step.

#include "vates/core/pipeline.hpp"
#include "vates/core/plan.hpp"
#include "vates/support/timer.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace vates::service {

/// Lifecycle states.  Queued/Running are transient; the other four are
/// terminal and final (no transitions out).
enum class JobState : int {
  Queued = 0,   ///< admitted, waiting for a worker
  Running = 1,  ///< a worker is executing it
  Done = 2,     ///< completed; the outcome carries the result
  Failed = 3,   ///< the reduction threw; the status carries the error
  Cancelled = 4,///< cancelled while queued or between runs
  Expired = 5,  ///< its deadline passed before a worker reached it
};

/// "queued", "running", "done", "failed", "cancelled", "expired".
const char* jobStateName(JobState state) noexcept;

/// True for Done/Failed/Cancelled/Expired.
bool jobStateTerminal(JobState state) noexcept;

/// What kind of work the job is.
enum class JobKind : int {
  Plan = 0, ///< batch reduction of a ReductionPlan through the pipeline
  Live = 1, ///< streamed reduction: DAQ replay → EventChannel → LiveReducer
};

/// "plan", "live".
const char* jobKindName(JobKind kind) noexcept;

/// One user's reduction request.
struct JobRequest {
  core::ReductionPlan plan;
  JobKind kind = JobKind::Plan;
  /// Higher priorities are dequeued first; FIFO within one priority.
  int priority = 0;
  /// Seconds after submission by which the job must have *started*; a
  /// job still queued past its deadline is marked Expired instead of
  /// running late.  0 disables the deadline.
  double deadlineSeconds = 0.0;
  /// Client correlation label, echoed in statuses and journal lines.
  std::string tag;
};

/// Shared cooperative-cancellation flag: the submitter-side handle sets
/// it; the pipeline polls it between runs via PipelineHooks::cancel.
/// Copies share the flag.
class CancellationToken {
public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void requestCancel() noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }
  bool cancelRequested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }
  /// The raw flag, for wiring into PipelineHooks (non-owning view; the
  /// token must outlive the pipeline run).
  const std::atomic<bool>* flag() const noexcept { return flag_.get(); }

private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Live progress of a running job.
struct JobProgress {
  std::size_t filesCompleted = 0;
  std::size_t filesTotal = 0;
  /// Per-stage wall time accumulated so far (UpdateEvents / MDNorm /
  /// BinMD / ...), merged file by file as the pipeline advances.
  StageTimes stages;
};

/// A point-in-time copy of one job's externally visible state.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  JobKind kind = JobKind::Plan;
  int priority = 0;
  std::string tag;
  /// True when the job ran as a shared-grid batch follower: its MDNorm
  /// normalization was computed once by the batch leader and reused.
  bool sharedNormalization = false;
  /// True when the job's normalization (or its whole partial state, for
  /// incremental runs) was served from the persistent on-disk cache
  /// instead of recomputed.
  bool cachedNormalization = false;
  /// True when the job ran as an incremental delta reduction: only the
  /// files appended since the cached partial state were re-reduced.
  bool incrementalRun = false;
  /// The locked autotune decision (core::AutotuneDecision::summary())
  /// when the job's plan enabled runtime autotuning; empty otherwise.
  /// Recorded so any tuned run can be replayed with the chosen config
  /// pinned manually (the bitwise-parity guarantee).
  std::string autotunedConfig;
  /// Failure / rejection detail (Failed, Cancelled, Expired).
  std::string error;
  double queuedSeconds = 0.0; ///< submit → start (or now, while queued)
  double runSeconds = 0.0;    ///< start → finish (or now, while running)
  JobProgress progress;
};

/// Terminal outcome: the final status plus, for Done jobs, the full
/// reduction result (histograms, timings, counters).  The result is
/// immutable and may be *shared* between jobs: full-replay cache hits
/// against the same hot-tier entry all reference one assembled result
/// instead of each paying the histogram copies (nullptr when the job
/// produced none — Failed/Cancelled/Expired).
struct JobOutcome {
  JobStatus status;
  std::shared_ptr<const core::ReductionResult> result;
};

/// The service's internal record of one job.  The atomics and the
/// SharedStageTimes are written by the worker/pipeline and read by
/// status queries without further locking; every other mutable field is
/// guarded by the owning service's mutex.
struct Job {
  std::uint64_t id = 0;
  /// Admission order — the FIFO tiebreak within one priority.
  std::uint64_t sequence = 0;
  JobRequest request;
  /// Normalization-compatibility key (see normalizationKey()); equal
  /// keys ⇒ bitwise-equal MDNorm normalization ⇒ batchable.
  std::string batchKey;
  CancellationToken cancel;
  std::chrono::steady_clock::time_point submitted;
  /// Absolute start-by time; nullopt when the request has no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  // -- live progress (lock-free to observe) --------------------------
  std::atomic<std::size_t> filesCompleted{0};
  std::size_t filesTotal = 0;
  SharedStageTimes progressStages;

  // -- guarded by the service mutex ----------------------------------
  JobState state = JobState::Queued;
  bool sharedNormalization = false;
  bool cachedNormalization = false;
  bool incrementalRun = false;
  std::string autotunedConfig;
  std::string error;
  std::optional<std::chrono::steady_clock::time_point> started;
  std::optional<std::chrono::steady_clock::time_point> finished;
  std::shared_ptr<const JobOutcome> outcome; ///< set on terminal states
};

/// The shared-grid batching key: a string serialization of every plan
/// field the MDNorm normalization depends on — instrument geometry,
/// lattice/orientation, symmetry, goniometer schedule, wavelength band,
/// proton charge, output grid, projection, file count — plus the
/// execution-config fields that change the accumulation *order*
/// (backend, ranks, traversal, accumulate strategy, overlap mode), so
/// equal keys guarantee bitwise-identical normalization histograms.
/// Deliberately excluded: the event seed, events per file, synthetic
/// signal shape, load mode, error tracking and BinMD accumulate options
/// — none of them touch the normalization, and excluding them is what
/// lets "same grid, different data" jobs coalesce.
std::string normalizationKey(const core::ReductionPlan& plan);

/// The incremental-reduction cache key: normalizationKey with the file
/// count canonicalized to zero (an entry tracks how many files it
/// covers itself — that is what lets an appended plan still hit), plus
/// every field that shapes the *data* accumulators: the event seed,
/// events per file, synthetic-signal parameters, centering, load mode,
/// ConvertToMD options, error tracking, and the BinMD accumulation
/// strategy knobs.  Equal keys ⇒ the cached partial signal/σ²/
/// normalization sums are bitwise what a from-scratch run of this plan
/// would have produced after the entry's file count.
std::string incrementalKey(const core::ReductionPlan& plan);

} // namespace vates::service
