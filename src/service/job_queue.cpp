#include "vates/service/job_queue.hpp"

#include "vates/support/error.hpp"

#include <algorithm>

namespace vates::service {

const char* admissionName(Admission admission) noexcept {
  switch (admission) {
  case Admission::Accepted:  return "accepted";
  case Admission::QueueFull: return "queue-full";
  case Admission::Closed:    return "closed";
  }
  return "?";
}

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  VATES_REQUIRE(capacity >= 1, "job queue capacity must be >= 1");
}

Admission JobQueue::tryPush(std::shared_ptr<Job> job) {
  VATES_REQUIRE(job != nullptr, "cannot enqueue a null job");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return Admission::Closed;
    }
    if (jobs_.size() >= capacity_) {
      return Admission::QueueFull;
    }
    jobs_.push_back(std::move(job));
    maxDepth_ = std::max(maxDepth_, jobs_.size());
  }
  available_.notify_one();
  return Admission::Accepted;
}

std::size_t JobQueue::bestIndex() const noexcept {
  std::size_t best = jobs_.size();
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (best == jobs_.size()) {
      best = i;
      continue;
    }
    const Job& candidate = *jobs_[i];
    const Job& incumbent = *jobs_[best];
    if (candidate.request.priority > incumbent.request.priority ||
        (candidate.request.priority == incumbent.request.priority &&
         candidate.sequence < incumbent.sequence)) {
      best = i;
    }
  }
  return best;
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [this] { return !jobs_.empty() || closed_; });
  if (jobs_.empty() || (closed_ && !drainOnClose_)) {
    return nullptr;
  }
  const std::size_t index = bestIndex();
  std::shared_ptr<Job> job = std::move(jobs_[index]);
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(index));
  return job;
}

std::vector<std::shared_ptr<Job>>
JobQueue::popCompatible(const std::string& key, std::size_t maxJobs) {
  std::vector<std::shared_ptr<Job>> batch;
  if (maxJobs == 0) {
    return batch;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ && !drainOnClose_) {
    return batch;
  }
  // Submission order within the batch: stable scan over the queue's
  // admission order, filtered by key.
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < jobs_.size() && picked.size() < maxJobs; ++i) {
    if (jobs_[i]->batchKey == key) {
      picked.push_back(i);
    }
  }
  std::sort(picked.begin(), picked.end(),
            [this](std::size_t a, std::size_t b) {
              return jobs_[a]->sequence < jobs_[b]->sequence;
            });
  for (const std::size_t index : picked) {
    batch.push_back(jobs_[index]);
  }
  // Erase back-to-front so earlier indices stay valid.
  std::sort(picked.rbegin(), picked.rend());
  for (const std::size_t index : picked) {
    jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(index));
  }
  return batch;
}

std::shared_ptr<Job> JobQueue::remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i]->id == id) {
      std::shared_ptr<Job> job = std::move(jobs_[i]);
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
      return job;
    }
  }
  return nullptr;
}

std::vector<std::shared_ptr<Job>> JobQueue::close(bool drainRemaining) {
  std::vector<std::shared_ptr<Job>> evicted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!closed_) {
      closed_ = true;
      drainOnClose_ = drainRemaining;
    }
    if (!drainOnClose_) {
      evicted = std::move(jobs_);
      jobs_.clear();
    }
  }
  available_.notify_all();
  return evicted;
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

std::size_t JobQueue::maxDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return maxDepth_;
}

} // namespace vates::service
