#include "vates/service/live_ingest.hpp"

namespace vates::service {

LiveIngestSession::LiveIngestSession(std::string name,
                                     const core::ReductionPlan& plan,
                                     LiveIngestOptions options)
    : name_(std::move(name)), options_(options), setup_(plan.workload),
      channel_(options.channelCapacity, options.channelByteBudget),
      reducer_(setup_, Executor(plan.config.backend), plan.config.convert),
      source_(options.source) {
  ingestThread_ = std::thread([this] {
    try {
      source_.run(channel_);
    } catch (const std::exception& error) {
      noteError(error.what());
      channel_.close(); // unblock the reducer
    }
    ingestDone_.store(true, std::memory_order_release);
  });
  reduceThread_ = std::thread([this] {
    try {
      reducer_.consume(channel_);
    } catch (const std::exception& error) {
      noteError(error.what());
      source_.requestStop(); // nobody is consuming; stop the drain
    }
    reduceDone_.store(true, std::memory_order_release);
  });
}

LiveIngestSession::~LiveIngestSession() { stop(); }

void LiveIngestSession::noteError(const std::string& what) {
  std::lock_guard<std::mutex> lock(errorMutex_);
  if (error_.empty()) {
    error_ = what;
  }
}

std::string LiveIngestSession::error() const {
  std::lock_guard<std::mutex> lock(errorMutex_);
  return error_;
}

bool LiveIngestSession::finished() const noexcept {
  return ingestDone_.load(std::memory_order_acquire) &&
         reduceDone_.load(std::memory_order_acquire);
}

stream::LiveSnapshot LiveIngestSession::snapshot() const {
  return reducer_.snapshot();
}

StreamMetrics LiveIngestSession::streamMetrics() const {
  const transport::IngestStats ingest = source_.stats();
  StreamMetrics metrics;
  metrics.name = name_;
  metrics.shmName = options_.source.reader.name;
  metrics.framesIngested = ingest.framesIngested;
  metrics.pulsesIngested = ingest.pulsesIngested;
  metrics.eventsIngested = ingest.eventsIngested;
  metrics.bytesIngested = ingest.bytesIngested;
  metrics.crcFailures = ingest.crcFailures;
  metrics.overruns = ingest.overruns;
  metrics.framesDropped = ingest.framesDropped;
  metrics.producerRestarts = ingest.producerRestarts;
  metrics.lagFrames = ingest.lagFrames;
  metrics.maxLagFrames = ingest.maxLagFrames;
  metrics.endOfStream = ingest.endOfStream;
  metrics.producerLost = ingest.producerLost;
  metrics.ingestLatency = summarizeLatencies(source_.latencySamples());
  const stream::LiveStats live = reducer_.snapshot().stats;
  metrics.runsReduced = live.runsReduced;
  // The source counts every dropped run (in-flight aborts and runs
  // skipped while hunting for a boundary); the reducer's own discard
  // counter is a subset of the aborts, so only the source total is
  // reported.
  metrics.runsDropped = ingest.runsDropped;
  return metrics;
}

stream::LiveSnapshot LiveIngestSession::stop() {
  std::lock_guard<std::mutex> lock(stopMutex_);
  source_.requestStop();
  if (ingestThread_.joinable()) {
    ingestThread_.join();
  }
  // The drain closed the channel on exit; the reducer finishes whatever
  // is queued and returns.  Runs fully received are still reduced.
  if (reduceThread_.joinable()) {
    reduceThread_.join();
  }
  return reducer_.snapshot();
}

} // namespace vates::service
