#include "vates/units/units.hpp"

#include "vates/support/error.hpp"

#include <cmath>

namespace vates::units {

double wavelengthFromTof(double tofMicroseconds, double pathMetres) {
  VATES_REQUIRE(tofMicroseconds > 0.0, "TOF must be positive");
  VATES_REQUIRE(pathMetres > 0.0, "flight path must be positive");
  // λ = (h/m) * t / L with t in seconds.
  return kHoverM * (tofMicroseconds * 1e-6) / pathMetres;
}

double tofFromWavelength(double lambdaAngstrom, double pathMetres) {
  VATES_REQUIRE(lambdaAngstrom > 0.0, "wavelength must be positive");
  VATES_REQUIRE(pathMetres > 0.0, "flight path must be positive");
  return lambdaAngstrom * pathMetres / kHoverM * 1e6;
}

double momentumFromWavelength(double lambdaAngstrom) {
  VATES_REQUIRE(lambdaAngstrom > 0.0, "wavelength must be positive");
  return kTwoPi / lambdaAngstrom;
}

double wavelengthFromMomentum(double kInvAngstrom) {
  VATES_REQUIRE(kInvAngstrom > 0.0, "momentum must be positive");
  return kTwoPi / kInvAngstrom;
}

double energyFromWavelength(double lambdaAngstrom) {
  VATES_REQUIRE(lambdaAngstrom > 0.0, "wavelength must be positive");
  return kEnergyFromLambdaCoeff / (lambdaAngstrom * lambdaAngstrom);
}

double wavelengthFromEnergy(double energyMeV) {
  VATES_REQUIRE(energyMeV > 0.0, "energy must be positive");
  return std::sqrt(kEnergyFromLambdaCoeff / energyMeV);
}

MomentumBand momentumBandFromWavelengthBand(double lambdaMin,
                                            double lambdaMax) {
  VATES_REQUIRE(lambdaMin > 0.0 && lambdaMax > lambdaMin,
                "need 0 < lambdaMin < lambdaMax");
  // Longer wavelength -> smaller momentum, so the band flips.
  return MomentumBand{momentumFromWavelength(lambdaMax),
                      momentumFromWavelength(lambdaMin)};
}

} // namespace vates::units
