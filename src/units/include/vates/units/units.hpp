#pragma once
/// \file units.hpp
/// Physical constants and unit conversions for time-of-flight (TOF)
/// neutron scattering.
///
/// Conventions (matching Mantid):
///  - wavelength λ in Ångström,
///  - momentum magnitude k = 2π/λ in Å⁻¹,
///  - TOF in microseconds,
///  - flight path lengths in metres,
///  - energies in meV.
///
/// The de Broglie relation for a neutron travelling a path of length L
/// in time t is λ[Å] = (h / m_n) · t / L, with (h/m_n) ≈ 3956.034 m/s·Å
/// when t is in seconds.  These conversions drive the synthetic event
/// generators and the momentum band [k_min, k_max] that bounds every
/// MDNorm trajectory.

#include <cstdint>

namespace vates::units {

/// Planck constant over neutron mass, in m·Å/s: v[m/s] = kHoverM / λ[Å].
inline constexpr double kHoverM = 3956.034;

/// 2π, used for k = 2π/λ.
inline constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Neutron energy in meV from wavelength in Å: E = 81.8042 / λ².
inline constexpr double kEnergyFromLambdaCoeff = 81.80420;

/// Wavelength (Å) from TOF (µs) over a total flight path (m).
double wavelengthFromTof(double tofMicroseconds, double pathMetres);

/// TOF (µs) from wavelength (Å) over a total flight path (m).
double tofFromWavelength(double lambdaAngstrom, double pathMetres);

/// Momentum magnitude k (Å⁻¹) from wavelength (Å).
double momentumFromWavelength(double lambdaAngstrom);

/// Wavelength (Å) from momentum magnitude k (Å⁻¹).
double wavelengthFromMomentum(double kInvAngstrom);

/// Neutron kinetic energy (meV) from wavelength (Å).
double energyFromWavelength(double lambdaAngstrom);

/// Wavelength (Å) from neutron kinetic energy (meV).
double wavelengthFromEnergy(double energyMeV);

/// Momentum band [kMin, kMax] corresponding to a wavelength band
/// [lambdaMin, lambdaMax]; validates ordering and positivity.
struct MomentumBand {
  double kMin = 0.0;
  double kMax = 0.0;
};
MomentumBand momentumBandFromWavelengthBand(double lambdaMin, double lambdaMax);

} // namespace vates::units
