#include "vates/comm/minimpi.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace vates::comm {

// ---------------------------------------------------------------------------
// World

World::World(int nRanks) : size_(nRanks), slots_(nRanks, nullptr) {
  VATES_REQUIRE(nRanks >= 1, "world needs at least one rank");
}

void World::barrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t arrivedGeneration = generation_;
  if (++waiting_ == size_) {
    waiting_ = 0;
    ++generation_;
    lock.unlock();
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this, arrivedGeneration] {
    return generation_ != arrivedGeneration;
  });
}

const void* World::publish(int rank, const void* pointer) {
  // No lock needed: each rank writes only its own slot, and slot reads
  // are separated from writes by barriers (which provide the ordering).
  const void* previous = slots_[static_cast<std::size_t>(rank)];
  slots_[static_cast<std::size_t>(rank)] = pointer;
  return previous;
}

void World::run(int nRanks, const std::function<void(Communicator&)>& body) {
  VATES_REQUIRE(nRanks >= 1, "need at least one rank");
  World world(nRanks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nRanks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nRanks));
  for (int rank = 0; rank < nRanks; ++rank) {
    threads.emplace_back([&world, &body, &errors, rank] {
      Communicator communicator(world, rank);
      try {
        body(communicator);
      } catch (...) {
        errors[static_cast<std::size_t>(rank)] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

// ---------------------------------------------------------------------------
// Communicator

int Communicator::size() const noexcept { return world_->size_; }

void Communicator::barrier() { world_->barrier(); }

void Communicator::requireMatchingSizes(std::size_t count, const char* what) {
  // Exchange buffer lengths before touching any buffer: with real MPI a
  // length mismatch is undefined behavior (here it would be an
  // out-of-bounds read of another rank's buffer).  Every rank gathers
  // every size, so every rank observes the mismatch and throws — the
  // world unwinds instead of deadlocking at a later barrier.
  const auto sizes = allGatherImpl(static_cast<std::uint64_t>(count));
  for (int r = 0; r < size(); ++r) {
    if (sizes[static_cast<std::size_t>(r)] != sizes[0]) {
      throw InvalidArgument(std::string(what) +
                            ": buffer length mismatch across ranks (rank 0 has " +
                            std::to_string(sizes[0]) + " elements, rank " +
                            std::to_string(r) + " has " +
                            std::to_string(sizes[static_cast<std::size_t>(r)]) +
                            ")");
    }
  }
}

template <typename T>
void Communicator::reduceSumImpl(std::span<T> data, int root) {
  VATES_REQUIRE(root >= 0 && root < size(), "invalid root rank");
  requireMatchingSizes(data.size(), "reduceSum");
  world_->publish(rank_, data.data());
  world_->barrier();
  if (rank_ == root) {
    // Sum in rank order for deterministic floating-point results.
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        continue;
      }
      const T* other = static_cast<const T*>(world_->slots()[r]);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] += other[i];
      }
    }
  }
  world_->barrier();
}

template <typename T>
void Communicator::allReduceSumImpl(std::span<T> data) {
  requireMatchingSizes(data.size(), "allReduceSum");
  world_->publish(rank_, data.data());
  world_->barrier();
  // Every rank computes the rank-ordered sum into a private scratch so
  // no buffer is written while another rank still reads it.
  std::vector<T> scratch(data.size(), T{});
  for (int r = 0; r < size(); ++r) {
    const T* other = static_cast<const T*>(world_->slots()[r]);
    for (std::size_t i = 0; i < data.size(); ++i) {
      scratch[i] += other[i];
    }
  }
  world_->barrier();
  std::copy(scratch.begin(), scratch.end(), data.begin());
}

template <typename T>
void Communicator::bcastImpl(std::span<T> data, int root) {
  VATES_REQUIRE(root >= 0 && root < size(), "invalid root rank");
  requireMatchingSizes(data.size(), "bcast");
  world_->publish(rank_, data.data());
  world_->barrier();
  if (rank_ != root) {
    const T* source = static_cast<const T*>(world_->slots()[root]);
    std::copy(source, source + data.size(), data.begin());
  }
  world_->barrier();
}

template <typename T>
std::vector<T> Communicator::allGatherImpl(T value) {
  world_->publish(rank_, &value);
  world_->barrier();
  std::vector<T> gathered(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    gathered[static_cast<std::size_t>(r)] =
        *static_cast<const T*>(world_->slots()[r]);
  }
  world_->barrier();
  return gathered;
}

void Communicator::reduceSum(std::span<double> data, int root) {
  reduceSumImpl(data, root);
}
void Communicator::reduceSum(std::span<float> data, int root) {
  reduceSumImpl(data, root);
}
void Communicator::reduceSum(std::span<std::uint64_t> data, int root) {
  reduceSumImpl(data, root);
}

void Communicator::allReduceSum(std::span<double> data) {
  allReduceSumImpl(data);
}
void Communicator::allReduceSum(std::span<float> data) {
  allReduceSumImpl(data);
}
void Communicator::allReduceSum(std::span<std::uint64_t> data) {
  allReduceSumImpl(data);
}

double Communicator::allReduceSum(double value) {
  const auto gathered = allGatherImpl(value);
  double sum = 0.0;
  for (double v : gathered) {
    sum += v;
  }
  return sum;
}

std::uint64_t Communicator::allReduceSum(std::uint64_t value) {
  const auto gathered = allGatherImpl(value);
  std::uint64_t sum = 0;
  for (std::uint64_t v : gathered) {
    sum += v;
  }
  return sum;
}

double Communicator::allReduceMax(double value) {
  const auto gathered = allGatherImpl(value);
  return *std::max_element(gathered.begin(), gathered.end());
}

double Communicator::allReduceMin(double value) {
  const auto gathered = allGatherImpl(value);
  return *std::min_element(gathered.begin(), gathered.end());
}

void Communicator::bcast(std::span<double> data, int root) {
  bcastImpl(data, root);
}
void Communicator::bcast(std::span<std::uint64_t> data, int root) {
  bcastImpl(data, root);
}

std::vector<double> Communicator::allGather(double value) {
  return allGatherImpl(value);
}
std::vector<std::uint64_t> Communicator::allGather(std::uint64_t value) {
  return allGatherImpl(value);
}

Communicator::Range Communicator::blockRange(std::size_t count) const noexcept {
  return comm::blockRange(count, rank_, size());
}

Communicator::Range blockRange(std::size_t count, int rank, int size) noexcept {
  const auto ranks = static_cast<std::size_t>(size);
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t base = count / ranks;
  const std::size_t remainder = count % ranks;
  const std::size_t begin = r * base + std::min(r, remainder);
  const std::size_t length = base + (r < remainder ? 1 : 0);
  return Communicator::Range{begin, begin + length};
}

} // namespace vates::comm
