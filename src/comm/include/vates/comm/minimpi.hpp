#pragma once
/// \file minimpi.hpp
/// In-process message-passing substrate ("minimpi").
///
/// The paper distributes Algorithm 1's outer loop over experiment files
/// with MPI (`mpirun -np 4/8 ...`) and combines per-rank MDNorm/BinMD
/// histograms with MPI_Reduce.  No MPI implementation is installed in
/// this environment, so this module provides the same communication
/// surface in-process: World::run() spawns one thread per rank, each
/// receives a Communicator with rank()/size() and the collectives the
/// pipeline needs (barrier, reduceSum, allReduceSum, bcast, gather).
///
/// Determinism: all summing collectives combine contributions in rank
/// order, so floating-point results are independent of thread scheduling
/// and identical to an equivalent sequential sum over ranks — a property
/// the integration tests rely on (1-rank vs N-rank equality).
///
/// The API deliberately mirrors the small MPI subset used by the paper's
/// proxies, so swapping a real MPI communicator back in is mechanical.

#include "vates/support/error.hpp"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace vates::comm {

class World;

/// Per-rank handle passed to the World::run() body.  Valid only for the
/// lifetime of that body.  All collectives must be called by *every*
/// rank of the world (standard MPI semantics); mismatched participation
/// deadlocks, exactly like the real thing.
class Communicator {
public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Block until every rank has entered the barrier.
  void barrier();

  /// Element-wise sum of \p data across ranks, deposited into the root
  /// rank's buffer (other ranks' buffers are unchanged).  All ranks must
  /// pass buffers of identical length: lengths are exchanged first and a
  /// mismatch throws InvalidArgument on *every* rank (the world unwinds
  /// cleanly instead of deadlocking or reading out of bounds).  The same
  /// check guards allReduceSum and bcast.
  void reduceSum(std::span<double> data, int root = 0);
  void reduceSum(std::span<float> data, int root = 0);
  void reduceSum(std::span<std::uint64_t> data, int root = 0);

  /// Element-wise sum across ranks, result deposited into every rank's
  /// buffer (deterministic: summed in rank order on each rank).
  void allReduceSum(std::span<double> data);
  void allReduceSum(std::span<float> data);
  void allReduceSum(std::span<std::uint64_t> data);

  /// Scalar all-reduce conveniences.
  double allReduceSum(double value);
  std::uint64_t allReduceSum(std::uint64_t value);
  double allReduceMax(double value);
  double allReduceMin(double value);

  /// Copy root's buffer into every rank's buffer.
  void bcast(std::span<double> data, int root = 0);
  void bcast(std::span<std::uint64_t> data, int root = 0);

  /// Gather one scalar per rank into a size()-length vector, valid on
  /// every rank (an allgather).
  std::vector<double> allGather(double value);
  std::vector<std::uint64_t> allGather(std::uint64_t value);

  /// Contiguous block decomposition of [0, count) for this rank — the
  /// paper's `start, end <- range(MPI_Rank, MPI_Size)`.  Remainder items
  /// go to the lowest ranks.
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t count() const noexcept { return end - begin; }
  };
  Range blockRange(std::size_t count) const noexcept;

private:
  friend class World;
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  void requireMatchingSizes(std::size_t count, const char* what);

  template <typename T>
  void reduceSumImpl(std::span<T> data, int root);
  template <typename T>
  void allReduceSumImpl(std::span<T> data);
  template <typename T>
  void bcastImpl(std::span<T> data, int root);
  template <typename T>
  std::vector<T> allGatherImpl(T value);

  World* world_;
  int rank_;
};

/// Computes the same block decomposition without a communicator (used by
/// tests and by serial fallbacks).
Communicator::Range blockRange(std::size_t count, int rank, int size) noexcept;

/// A fixed-size group of ranks executing a body concurrently.
class World {
public:
  /// Run \p body on \p nRanks concurrently-executing ranks (threads) and
  /// join them all.  Exceptions thrown by any rank are captured; the
  /// first (by rank order) is rethrown after all ranks finish or abort.
  static void run(int nRanks, const std::function<void(Communicator&)>& body);

private:
  friend class Communicator;

  explicit World(int nRanks);

  void barrier();
  const void* publish(int rank, const void* pointer);
  const void* const* slots() const noexcept { return slots_.data(); }

  int size_;
  // Generation-counting barrier.
  std::mutex mutex_;
  std::condition_variable cv_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  // Pointer exchange slots for collectives (one per rank).
  std::vector<const void*> slots_;
};

} // namespace vates::comm
