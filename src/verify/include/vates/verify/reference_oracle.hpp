#pragma once
/// \file reference_oracle.hpp
/// The reference oracle: a deliberately slow, scalar, double-precision
/// second implementation of the full Algorithm-1 chain (MDNorm + BinMD
/// + cross-section divide), written for obvious correctness rather than
/// speed and sharing **no** kernel code with src/kernels/.
///
/// Every correctness claim the optimized paths make about each other is
/// pairwise (legacy vs dda, serial vs threaded, host vs device-sim): if
/// two fast paths inherit the same subtle geometry bug, parity tests
/// between them cannot see it.  The oracle breaks that symmetry the way
/// the paper's own validation does (MiniVATES vs the Garnet/Mantid
/// baseline, Tables II-VI): an independent implementation of the same
/// physics that the differential harness (diff.hpp, tests/
/// test_oracle_diff.cpp) compares every traversal × accumulator ×
/// backend × overlap configuration against.
///
/// Independence rules observed here:
///  - no header from src/kernels/ is included (no intersections.hpp,
///    trajectory_walk.hpp, transforms.hpp, mdnorm.hpp, binmd.hpp);
///  - plane crossings are found by a naive full scan of every bin plane
///    on every axis, momenta sorted with std::sort;
///  - the flux table is interpolated by this file's own scalar code,
///    not FluxTableView's inline interpolator;
///  - transform chains (N_op, B_op) are composed locally from the
///    geometry primitives;
///  - accumulation is sequential into plain doubles — no executor, no
///    GridAccumulator, no atomics.
///
/// What *is* shared: the input-side data model (ExperimentSetup,
/// EventGenerator, Histogram3D as a container) — the oracle must reduce
/// exactly the same experiment the pipeline reduces, so the synthetic
/// data source is common by design.  Algorithmic contracts that are
/// part of the specification (the [min, max) bin convention, the
/// 1e-12 parallel-trajectory tolerance, the closed-hull slack on plane
/// crossings, the zero-normalization NaN policy) are re-stated locally
/// as named constants; tests assert they equal the kernels' published
/// values so the two implementations cannot silently drift apart.

#include "vates/events/experiment_setup.hpp"
#include "vates/histogram/histogram3d.hpp"

#include <optional>

namespace vates::verify {

/// |t[axis]| below this is treated as parallel to that axis' bin planes
/// (no crossings).  Must equal vates::kTrajectoryParallelTolerance —
/// asserted by the differential tests, restated here so the oracle does
/// not include kernel headers.
inline constexpr double kOracleParallelTolerance = 1e-12;

/// Bins where the normalization is below this yield NaN cross-section
/// (the pipeline's Histogram3D::divide default epsilon).
inline constexpr double kOracleDivideEpsilon = 1e-300;

/// Reference MDNorm for one run: for every (symmetry op × unmasked
/// detector), intersect the trajectory p(k) = k·t with every bin plane
/// over the run's momentum band, sort the crossing momenta, and deposit
/// solidAngle · protonCharge · (Φ(k2) − Φ(k1)) into the bin containing
/// each segment midpoint.  Accumulates on top of \p normalization's
/// existing contents (like the kernels, so multi-run loops compose).
/// Honors setup.detectorMask() exactly as the pipeline does: masked
/// pixels contribute nothing.
void referenceMDNorm(const ExperimentSetup& setup, const RunInfo& run,
                     Histogram3D& normalization);

/// Reference BinMD for one run's events: sequential loop over
/// (symmetry op × event), projecting each sample-frame Q through the
/// locally composed per-op transform and accumulating the event signal
/// (and, when \p errorSq is non-null, its squared error) into the
/// containing bin.  Accumulates on top of existing contents.
void referenceBinMD(const ExperimentSetup& setup, const EventTable& events,
                    Histogram3D& signal, Histogram3D* errorSq = nullptr);

/// Bin-wise signal / normalization with the pipeline's
/// zero-normalization policy: denominators below \p epsilon yield NaN
/// (uncovered reciprocal space, masked downstream).
Histogram3D referenceCrossSection(const Histogram3D& signal,
                                  const Histogram3D& normalization,
                                  double epsilon = kOracleDivideEpsilon);

/// σ² of the cross-section under the pipeline's convention: the
/// normalization is exact, so σ²(S/N) = σ²(S)/N²; NaN where the
/// normalization is below \p epsilon.
Histogram3D referenceCrossSectionErrorSq(const Histogram3D& signalErrorSq,
                                         const Histogram3D& normalization,
                                         double epsilon = kOracleDivideEpsilon);

/// The oracle's answer for a whole experiment.
struct OracleResult {
  Histogram3D signal;
  Histogram3D normalization;
  Histogram3D crossSection;
  std::optional<Histogram3D> signalErrorSq;
  std::optional<Histogram3D> crossSectionErrorSq;
  std::size_t eventsProcessed = 0;
};

/// Run the full reference chain over every file of the setup's workload
/// (the single-rank, strictly sequential Algorithm 1).  With
/// \p trackErrors the σ² histograms are populated alongside, mirroring
/// ReductionConfig::trackErrors.
OracleResult referenceReduce(const ExperimentSetup& setup,
                             bool trackErrors = false);

} // namespace vates::verify
