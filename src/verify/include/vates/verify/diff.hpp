#pragma once
/// \file diff.hpp
/// Histogram differencing for the oracle harness: compare an optimized
/// path's output against the reference oracle bin by bin, under a
/// tolerance that understands both floating-point noise (ULPs, relative
/// error) and the accumulated-magnitude floor below which differences
/// are physically meaningless.  A failed comparison pinpoints the worst
/// bin by its (H, K, L) axis coordinates and carries the label of the
/// configuration that produced it, so a regression report reads
/// "dda/Privatized/OpenMP/full, seed 7: bin (H,K,L)=(−1.25, 0.75, 0)
/// off by 3.1e-4" rather than "histograms differ".

#include "vates/histogram/histogram3d.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace vates::verify {

/// A per-bin comparison passes when ANY of these holds:
///  - |oracle − candidate| ≤ absoluteFloorScale · max|oracle bin|
///    (differences far below the histogram's own scale);
///  - relative error ≤ `relative`;
///  - the values are within `maxUlps` representable doubles.
/// NaN patterns must match exactly (the zero-normalization policy is
/// part of the contract), so NaN-vs-number is always a failure.
struct Tolerance {
  double relative = 1e-8;
  std::uint64_t maxUlps = 16;
  double absoluteFloorScale = 1e-9;

  /// Exact-match tolerance (golden regression: same code, same inputs).
  static Tolerance bitwise() { return {0.0, 0, 0.0}; }
};

/// Distance in representable doubles between \p a and \p b; 0 for
/// bitwise-equal values (including same-signed zeros and identical NaN
/// payloads), max for any NaN/number or NaN/NaN-payload mismatch.
std::uint64_t ulpDistance(double a, double b) noexcept;

/// The worst-offending bin of one comparison.
struct BinDiff {
  std::size_t flatIndex = 0;
  std::array<std::size_t, 3> index{};  ///< (i, j, k) bin indices
  std::array<double, 3> center{};      ///< bin-center axis coordinates
  double oracle = 0.0;
  double candidate = 0.0;
  double absDiff = 0.0;
  double relDiff = 0.0;
  std::uint64_t ulps = 0;
};

/// Result of one histogram-vs-oracle comparison.
struct DiffReport {
  std::string label;  ///< histogram name + contributing configuration
  bool pass = true;
  std::size_t binsCompared = 0;
  std::size_t binsMismatched = 0;
  std::size_t nanMismatches = 0;  ///< NaN on one side only
  double absoluteFloor = 0.0;     ///< resolved floor for this comparison
  /// The bin with the largest absolute difference (NaN mismatches rank
  /// worst); present whenever any bin differed at all, even within
  /// tolerance, so passing reports still show the noise level.
  std::optional<BinDiff> worst;

  /// One-line human-readable verdict with the worst bin's (H, K, L).
  std::string summary() const;
};

/// Compare \p candidate against \p oracle bin-by-bin under \p tolerance.
/// Throws InvalidArgument on shape mismatch (a shape drift is a harness
/// bug, not a numerical difference).  \p label names the comparison in
/// the report (e.g. "normalization dda/Atomic/OpenMP/off seed=3").
DiffReport compareHistograms(const Histogram3D& oracle,
                             const Histogram3D& candidate,
                             const Tolerance& tolerance = {},
                             std::string label = {});

} // namespace vates::verify
