#pragma once
/// \file fuzz_inputs.hpp
/// Fuzz-style experiment generators shared between the oracle
/// differential tests and the existing edge-case suites: seeded random
/// small workloads (cheap enough that the scalar oracle runs in
/// milliseconds) plus a fixed roster of named degenerate cases —
/// identity/180° goniometers, a near-singular UB, empty and
/// majority-masked detector sets, hairline flux bands, single-bin grids
/// — each of which has historically been where trajectory/binning code
/// breaks first.

#include "vates/events/experiment_setup.hpp"
#include "vates/support/rng.hpp"

#include <string>
#include <vector>

namespace vates::verify {

/// One fuzz experiment: a workload plus masking policy.  Kept as a
/// value type so test parameter sweeps can print and copy it freely.
struct FuzzExperiment {
  std::string name;
  WorkloadSpec spec;
  /// Fraction of detectors masked (seeded-random selection); 1.0 masks
  /// every detector (the "empty detector set" case).
  double maskFraction = 0.0;
};

/// A randomized small experiment drawn from \p rng: 30–80 detectors on
/// a random instrument, 1–3 files, ≤ 2000 events/file, random small
/// point group, random wavelength band, and a random coarse grid.
/// Deterministic for a given rng state.
FuzzExperiment randomExperiment(Xoshiro256& rng, std::size_t index);

/// The named degenerate cases, in a fixed order (stable test names).
std::vector<FuzzExperiment> degenerateExperiments();

/// The experiments whose oracle reductions are committed under
/// tests/golden/ as <name>.nxl (CRC-stamped nxlite files).  Shared by
/// tools/gen_golden (writer) and the golden regression tests (reader)
/// so the two can never disagree about what a golden contains.
std::vector<FuzzExperiment> goldenExperiments();

/// Realize the experiment: build the setup and attach the (seeded)
/// random detector mask when maskFraction > 0.
ExperimentSetup makeSetup(const FuzzExperiment& experiment);

} // namespace vates::verify
