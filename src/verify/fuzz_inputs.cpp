#include "vates/verify/fuzz_inputs.hpp"

#include <iterator>
#include <utility>

namespace vates::verify {

namespace {

/// Small groups keep the oracle's (op × detector × plane) scan cheap;
/// the occasional "mmm"/"422" still exercises multi-op symmetry
/// deposition and duplicate-crossing handling.
const char* const kFuzzPointGroups[] = {"1", "-1", "2", "m", "2/m", "222",
                                        "mmm", "4", "422"};

/// A compact baseline every fuzz case starts from: big enough to cover
/// real trajectory/bin interaction, small enough that the scalar oracle
/// and a full config sweep stay in the millisecond range.
WorkloadSpec tinyBaseline() {
  WorkloadSpec spec = WorkloadSpec::benzilCorelli(1.0);
  spec.name = "fuzz-baseline";
  spec.nFiles = 2;
  spec.nDetectors = 48;
  spec.eventsPerFile = 800;
  spec.bins = {10, 10, 2};
  spec.extentMin = {-4.0, -4.0, -1.0};
  spec.extentMax = {4.0, 4.0, 1.0};
  spec.pointGroup = "2/m";
  return spec;
}

} // namespace

FuzzExperiment randomExperiment(Xoshiro256& rng, std::size_t index) {
  WorkloadSpec spec = tinyBaseline();
  spec.name = "fuzz-random-" + std::to_string(index);

  spec.instrument = rng.uniformInt(2) == 0 ? "corelli" : "topaz";
  spec.nFiles = 1 + rng.uniformInt(3);
  spec.nDetectors = 30 + rng.uniformInt(51);
  spec.eventsPerFile = 200 + rng.uniformInt(1801);

  spec.latticeA = rng.uniform(3.0, 15.0);
  spec.latticeB = rng.uniform(3.0, 15.0);
  spec.latticeC = rng.uniform(3.0, 15.0);
  spec.latticeGamma = rng.uniform(80.0, 120.0);
  spec.pointGroup =
      kFuzzPointGroups[rng.uniformInt(std::size(kFuzzPointGroups))];

  spec.omegaStartDeg = rng.uniform(-90.0, 90.0);
  spec.omegaStepDeg = rng.uniform(0.0, 12.0);
  spec.protonCharge = rng.uniform(0.25, 4.0);

  spec.lambdaMin = rng.uniform(0.5, 1.5);
  spec.lambdaMax = spec.lambdaMin + rng.uniform(0.5, 2.5);

  for (std::size_t axis = 0; axis < 3; ++axis) {
    spec.bins[axis] = 1 + rng.uniformInt(14);
    spec.extentMin[axis] = rng.uniform(-6.0, -2.0);
    spec.extentMax[axis] = spec.extentMin[axis] + rng.uniform(2.0, 8.0);
  }

  spec.braggAmplitude = rng.uniform(20.0, 200.0);
  spec.diffuseBackground = rng.uniform(0.1, 1.0);
  spec.seed = rng.next();

  FuzzExperiment experiment{spec.name, std::move(spec), 0.0};
  // One in four experiments also runs masked, like production
  // reductions with beam-stop shadows and dead tubes.
  if (rng.uniformInt(4) == 0) {
    experiment.maskFraction = rng.uniform(0.05, 0.5);
  }
  return experiment;
}

std::vector<FuzzExperiment> degenerateExperiments() {
  std::vector<FuzzExperiment> cases;
  const auto add = [&cases](const std::string& name, auto mutate,
                            double maskFraction = 0.0) {
    WorkloadSpec spec = tinyBaseline();
    spec.name = name;
    mutate(spec);
    cases.push_back({name, std::move(spec), maskFraction});
  };

  // Every run shares one goniometer orientation: per-run transform
  // caching must not collapse distinct runs' deposits.
  add("degenerate-goniometer", [](WorkloadSpec& spec) {
    spec.omegaStepDeg = 0.0;
    spec.nFiles = 3;
  });
  // Runs exactly 180° apart: R and Rᵀ differ only in off-diagonal
  // signs, a classic transpose-confusion detector.
  add("goniometer-180", [](WorkloadSpec& spec) {
    spec.omegaStartDeg = 0.0;
    spec.omegaStepDeg = 180.0;
  });
  // γ → 180° makes B nearly singular: UB⁻¹ entries blow up and the
  // composed transform is ill-conditioned but still well-defined.
  add("near-singular-ub", [](WorkloadSpec& spec) {
    spec.latticeGamma = 179.5;
    spec.pointGroup = "1";
  });
  // All pixels masked: zero normalization everywhere, all-NaN
  // cross-section, and the compacted active-detector list is empty.
  add(
      "empty-detector-set", [](WorkloadSpec&) {}, 1.0);
  // 90% masked: the compacted launch list is much shorter than the
  // detector table, so any index confusion binned the wrong pixel.
  add(
      "masked-majority", [](WorkloadSpec&) {}, 0.9);
  // One bin per axis: every trajectory has at most two hull crossings
  // and the whole band deposits into flat index 0.
  add("single-bin-grid", [](WorkloadSpec& spec) {
    spec.bins = {1, 1, 1};
  });
  // Hairline wavelength band (kMax − kMin ≈ 1e-9·kMin): segment widths
  // underflow toward zero and flux integrals catastrophically cancel.
  add("hairline-flux-band", [](WorkloadSpec& spec) {
    spec.lambdaMin = 1.0;
    spec.lambdaMax = 1.0 + 1e-9;
  });
  // A slab one thin bin deep on L: most trajectories clip the hull.
  add("thin-slab", [](WorkloadSpec& spec) {
    spec.bins = {9, 9, 1};
    spec.extentMin[2] = -0.05;
    spec.extentMax[2] = 0.05;
  });
  // No events at all: BinMD must leave the signal identically zero
  // while MDNorm still fills the normalization.
  add("zero-events", [](WorkloadSpec& spec) { spec.eventsPerFile = 0; });

  return cases;
}

std::vector<FuzzExperiment> goldenExperiments() {
  std::vector<FuzzExperiment> cases;

  // Benzil-on-CORELLI in miniature: the paper's first use case with a
  // multi-op point group and several goniometer settings.
  WorkloadSpec benzil = tinyBaseline();
  benzil.name = "golden-benzil-tiny";
  cases.push_back({benzil.name, std::move(benzil), 0.0});

  // Bixbyite-on-TOPAZ in miniature: the second instrument geometry and
  // a cubic point group, so the goldens cover both branch families.
  WorkloadSpec bixbyite = WorkloadSpec::bixbyiteTopaz(1.0);
  bixbyite.name = "golden-bixbyite-tiny";
  bixbyite.nFiles = 2;
  bixbyite.nDetectors = 40;
  bixbyite.eventsPerFile = 600;
  bixbyite.bins = {8, 8, 3};
  bixbyite.extentMin = {-3.0, -3.0, -1.5};
  bixbyite.extentMax = {3.0, 3.0, 1.5};
  cases.push_back({bixbyite.name, std::move(bixbyite), 0.0});

  // A masked reduction: goldens must pin the masked-normalization
  // semantics (masked pixels deposit nothing, BinMD bins everything).
  WorkloadSpec masked = tinyBaseline();
  masked.name = "golden-masked";
  masked.seed = 0x901dcafeULL; // distinct event stream from the benzil golden
  cases.push_back({masked.name, std::move(masked), 0.3});

  return cases;
}

ExperimentSetup makeSetup(const FuzzExperiment& experiment) {
  // Masking now lives on the spec itself (ExperimentSetup applies the
  // seeded selection at construction, bitwise the scheme this function
  // used to implement inline — same stream id, same >= 1.0 semantics).
  // The FuzzExperiment-level fraction is kept for the roster's
  // ergonomics and overrides the spec's own when set.
  WorkloadSpec spec = experiment.spec;
  if (experiment.maskFraction > 0.0) {
    spec.maskFraction = experiment.maskFraction;
  }
  return ExperimentSetup(spec);
}

} // namespace vates::verify
