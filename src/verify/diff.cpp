#include "vates/verify/diff.hpp"

#include "vates/support/error.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace vates::verify {

namespace {

/// Map a double onto a monotonically ordered signed integer scale so
/// ULP distance is a plain subtraction (the classic sign-magnitude →
/// offset-binary trick).
std::int64_t orderedBits(double value) noexcept {
  const auto bits = std::bit_cast<std::int64_t>(value);
  return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
}

double binCenter(const BinAxis& axis, std::size_t index) {
  return axis.min() + (static_cast<double>(index) + 0.5) * axis.width();
}

} // namespace

std::uint64_t ulpDistance(double a, double b) noexcept {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return 0;
  }
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::int64_t oa = orderedBits(a);
  const std::int64_t ob = orderedBits(b);
  return oa > ob ? static_cast<std::uint64_t>(oa) - static_cast<std::uint64_t>(ob)
                 : static_cast<std::uint64_t>(ob) - static_cast<std::uint64_t>(oa);
}

std::string DiffReport::summary() const {
  char buffer[512];
  if (!worst) {
    std::snprintf(buffer, sizeof buffer, "[%s] %s: %zu bins identical",
                  pass ? "PASS" : "FAIL", label.c_str(), binsCompared);
    return buffer;
  }
  std::snprintf(
      buffer, sizeof buffer,
      "[%s] %s: %zu/%zu bins out of tolerance (%zu NaN mismatches, "
      "floor=%.3g); worst bin [%zu,%zu,%zu] at (H,K,L)=(%.6g, %.6g, %.6g): "
      "oracle=%.17g candidate=%.17g absDiff=%.3g relDiff=%.3g ulps=%llu",
      pass ? "PASS" : "FAIL", label.c_str(), binsMismatched, binsCompared,
      nanMismatches, absoluteFloor, worst->index[0], worst->index[1],
      worst->index[2], worst->center[0], worst->center[1], worst->center[2],
      worst->oracle, worst->candidate, worst->absDiff, worst->relDiff,
      static_cast<unsigned long long>(worst->ulps));
  return buffer;
}

DiffReport compareHistograms(const Histogram3D& oracle,
                             const Histogram3D& candidate,
                             const Tolerance& tolerance, std::string label) {
  VATES_REQUIRE(oracle.sameShape(candidate),
                "diff: oracle and candidate histogram shapes differ");

  DiffReport report;
  report.label = std::move(label);
  report.binsCompared = oracle.size();

  double maxAbsOracle = 0.0;
  for (const double value : oracle.data()) {
    if (!std::isnan(value)) {
      maxAbsOracle = std::max(maxAbsOracle, std::fabs(value));
    }
  }
  report.absoluteFloor = tolerance.absoluteFloorScale * maxAbsOracle;

  const std::size_t ny = oracle.axis(1).nBins();
  const std::size_t nz = oracle.axis(2).nBins();
  double worstBadness = 0.0; // absDiff; NaN mismatch = +inf
  bool worstFailing = false;

  for (std::size_t flat = 0; flat < oracle.size(); ++flat) {
    const double expected = oracle.data()[flat];
    const double actual = candidate.data()[flat];
    const bool expectedNan = std::isnan(expected);
    const bool actualNan = std::isnan(actual);

    double absDiff = 0.0;
    double relDiff = 0.0;
    std::uint64_t ulps = 0;
    bool ok = true;
    double badness = 0.0;

    if (expectedNan || actualNan) {
      if (expectedNan != actualNan) {
        ok = false;
        ++report.nanMismatches;
        absDiff = std::numeric_limits<double>::infinity();
        relDiff = std::numeric_limits<double>::infinity();
        ulps = std::numeric_limits<std::uint64_t>::max();
        badness = std::numeric_limits<double>::infinity();
      }
    } else if (expected != actual) {
      absDiff = std::fabs(expected - actual);
      const double scale = std::max(std::fabs(expected), std::fabs(actual));
      relDiff = scale > 0.0 ? absDiff / scale : 0.0;
      ulps = ulpDistance(expected, actual);
      ok = absDiff <= report.absoluteFloor || relDiff <= tolerance.relative ||
           ulps <= tolerance.maxUlps;
      badness = absDiff;
    }

    if (!ok) {
      ++report.binsMismatched;
    }
    // Keep the largest difference seen, preferring failing bins: a
    // mismatch must never be shadowed by a bigger in-tolerance one.
    const bool record =
        badness > 0.0 && (!ok ? (!worstFailing || badness > worstBadness)
                              : (!worstFailing && badness > worstBadness));
    if (record) {
      const std::size_t i = flat / (ny * nz);
      const std::size_t j = (flat / nz) % ny;
      const std::size_t k = flat % nz;
      report.worst = BinDiff{flat,
                             {i, j, k},
                             {binCenter(oracle.axis(0), i),
                              binCenter(oracle.axis(1), j),
                              binCenter(oracle.axis(2), k)},
                             expected,
                             actual,
                             absDiff,
                             relDiff,
                             ulps};
      worstBadness = badness;
      worstFailing = !ok;
    }
  }

  report.pass = report.binsMismatched == 0;
  return report;
}

} // namespace vates::verify
