#include "vates/verify/reference_oracle.hpp"

#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace vates::verify {

namespace {

/// Closed-hull slack for crossing acceptance: a crossing on one axis
/// belongs to the trajectory's hull when it lies within the box on the
/// other two axes, with a hair of slack for points sitting exactly on a
/// boundary plane.  Same contract as the kernels' insideAxisClosed
/// (1e-9 of one bin width), restated independently.
bool insideAxisClosed(const BinAxis& axis, double value) {
  const double slack = 1e-9 * axis.width();
  return value >= axis.min() - slack && value <= axis.max() + slack;
}

bool insideBoxClosed(const Histogram3D& histogram, const V3& p) {
  return insideAxisClosed(histogram.axis(0), p.x) &&
         insideAxisClosed(histogram.axis(1), p.y) &&
         insideAxisClosed(histogram.axis(2), p.z);
}

/// Bin location delegates to BinAxis::bin — the axis's own [min, max)
/// locator — rather than restating it.  Bin *assignment* is part of the
/// reduction's definition, not of the arithmetic under test: a
/// coordinate sitting exactly on a bin plane (events at K = 0 with a
/// plane there, say) must land in the same bin on both sides of the
/// diff, and a restated `(value − min) / width` rounds differently from
/// the production `(value − min) · inverseWidth` precisely at those
/// planes.  The scenario matrix caught that divergence (scn10: 8 bins
/// across ±3.89…, half the in-plane events one bin off).
std::optional<std::size_t> locateBin(const Histogram3D& histogram,
                                     const V3& p) {
  const auto i = histogram.axis(0).bin(p.x);
  const auto j = histogram.axis(1).bin(p.y);
  const auto k = histogram.axis(2).bin(p.z);
  if (!i || !j || !k) {
    return std::nullopt;
  }
  return histogram.flatIndex(*i, *j, *k);
}

/// Integrated flux Φ(k), interpolated linearly on the spectrum's
/// uniform cumulative table and clamped to the band — the oracle's own
/// scalar interpolator, independent of FluxTableView's inline one.
double integratedFlux(const FluxSpectrum& flux, double k) {
  const std::span<const double> table = flux.table();
  const std::size_t n = table.size();
  if (n == 0) {
    return 0.0;
  }
  if (k <= flux.kMin()) {
    return table.front();
  }
  if (k >= flux.kMax()) {
    return table.back();
  }
  const double step =
      (flux.kMax() - flux.kMin()) / static_cast<double>(n - 1);
  const double position = (k - flux.kMin()) / step;
  auto index = static_cast<std::size_t>(std::floor(position));
  if (index >= n - 1) {
    index = n - 2;
  }
  const double fraction = position - static_cast<double>(index);
  return table[index] + fraction * (table[index + 1] - table[index]);
}

/// MDNorm's per-op trajectory transform for one run:
///   N_op = W⁻¹ · op · (U·B)⁻¹ · R⁻¹ / 2π
/// composed locally from geometry primitives (R⁻¹ = Rᵀ for a rotation).
M33 mdnormTransform(const Projection& projection,
                    const OrientedLattice& lattice, const M33& op,
                    const M33& goniometerR) {
  return (projection.Winv() * op * lattice.UBinv() *
          goniometerR.transposed()) *
         (1.0 / units::kTwoPi);
}

/// BinMD's per-op transform (events already carry sample-frame Q):
///   B_op = W⁻¹ · op · (U·B)⁻¹ / 2π
M33 binmdTransform(const Projection& projection,
                   const OrientedLattice& lattice, const M33& op) {
  return (projection.Winv() * op * lattice.UBinv()) * (1.0 / units::kTwoPi);
}

/// All momenta in [kMin, kMax] at which the ray p(k) = k·t crosses a
/// bin plane of the histogram (plus the in-box band endpoints),
/// unsorted, duplicates allowed — a naive full scan of every plane of
/// every axis.  Zero-width segments between duplicates are skipped by
/// the caller's k2 > k1 guard, so deduplication is unnecessary.
std::vector<double> crossingMomenta(const Histogram3D& histogram, const V3& t,
                                    double kMin, double kMax) {
  std::vector<double> momenta;
  for (std::size_t axisIndex = 0; axisIndex < 3; ++axisIndex) {
    const double tAxis = t[axisIndex];
    if (std::fabs(tAxis) < kOracleParallelTolerance) {
      continue; // ray parallel to this axis' planes: no crossings
    }
    const BinAxis& axis = histogram.axis(axisIndex);
    for (std::size_t plane = 0; plane <= axis.nBins(); ++plane) {
      const double k = axis.edge(plane) / tAxis;
      if (!(k >= kMin && k <= kMax)) {
        continue;
      }
      const V3 p = t * k;
      bool onHull = true;
      for (std::size_t other = 0; other < 3; ++other) {
        if (other != axisIndex &&
            !insideAxisClosed(histogram.axis(other), p[other])) {
          onHull = false;
          break;
        }
      }
      if (onHull) {
        momenta.push_back(k);
      }
    }
  }
  for (const double kEnd : {kMin, kMax}) {
    if (insideBoxClosed(histogram, t * kEnd)) {
      momenta.push_back(kEnd);
    }
  }
  return momenta;
}

} // namespace

void referenceMDNorm(const ExperimentSetup& setup, const RunInfo& run,
                     Histogram3D& normalization) {
  VATES_REQUIRE(run.kMax > run.kMin && run.kMin > 0.0,
                "need 0 < kMin < kMax");
  const Instrument& instrument = setup.instrument();
  const DetectorMask* mask = setup.detectorMask();
  const FluxSpectrum& flux = setup.flux();
  const std::span<double> bins = normalization.data();

  for (const M33& op : setup.symmetryMatrices()) {
    const M33 transform =
        mdnormTransform(setup.projection(), setup.lattice(), op,
                        run.goniometerR);
    for (std::size_t detector = 0; detector < instrument.nDetectors();
         ++detector) {
      if (mask != nullptr && mask->isMasked(detector)) {
        continue;
      }
      const V3 t = transform * instrument.qLabDirection(detector);
      const double weightFactor =
          instrument.solidAngle(detector) * run.protonCharge;

      std::vector<double> momenta =
          crossingMomenta(normalization, t, run.kMin, run.kMax);
      std::sort(momenta.begin(), momenta.end());

      for (std::size_t i = 0; i + 1 < momenta.size(); ++i) {
        const double k1 = momenta[i];
        const double k2 = momenta[i + 1];
        if (k2 <= k1) {
          continue; // duplicate crossing (grid edge/corner): zero width
        }
        const double deposit =
            weightFactor * (integratedFlux(flux, k2) - integratedFlux(flux, k1));
        if (deposit <= 0.0) {
          continue;
        }
        const V3 midpoint = t * (0.5 * (k1 + k2));
        if (const auto bin = locateBin(normalization, midpoint)) {
          bins[*bin] += deposit;
        }
      }
    }
  }
}

void referenceBinMD(const ExperimentSetup& setup, const EventTable& events,
                    Histogram3D& signal, Histogram3D* errorSq) {
  if (errorSq != nullptr) {
    VATES_REQUIRE(signal.sameShape(*errorSq),
                  "signal and error histograms disagree in shape");
  }
  const std::span<double> signalBins = signal.data();

  for (const M33& op : setup.symmetryMatrices()) {
    const M33 transform =
        binmdTransform(setup.projection(), setup.lattice(), op);
    for (std::size_t event = 0; event < events.size(); ++event) {
      const V3 p = transform * events.qSample(event);
      if (const auto bin = locateBin(signal, p)) {
        signalBins[*bin] += events.signal(event);
        if (errorSq != nullptr) {
          errorSq->data()[*bin] += events.errorSq(event);
        }
      }
    }
  }
}

Histogram3D referenceCrossSection(const Histogram3D& signal,
                                  const Histogram3D& normalization,
                                  double epsilon) {
  VATES_REQUIRE(signal.sameShape(normalization), "histogram shapes differ");
  Histogram3D out = signal.emptyLike();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double denominator = normalization.data()[i];
    out.data()[i] = std::fabs(denominator) > epsilon
                        ? signal.data()[i] / denominator
                        : std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

Histogram3D referenceCrossSectionErrorSq(const Histogram3D& signalErrorSq,
                                         const Histogram3D& normalization,
                                         double epsilon) {
  VATES_REQUIRE(signalErrorSq.sameShape(normalization),
                "histogram shapes differ");
  Histogram3D out = signalErrorSq.emptyLike();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double denominator = normalization.data()[i];
    out.data()[i] = std::fabs(denominator) > epsilon
                        ? signalErrorSq.data()[i] / (denominator * denominator)
                        : std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

OracleResult referenceReduce(const ExperimentSetup& setup, bool trackErrors) {
  OracleResult result{setup.makeHistogram(), setup.makeHistogram(),
                      setup.makeHistogram(), std::nullopt, std::nullopt, 0};
  if (trackErrors) {
    result.signalErrorSq = setup.makeHistogram();
  }
  const EventGenerator generator = setup.makeGenerator();
  for (std::size_t fileIndex = 0; fileIndex < setup.spec().nFiles;
       ++fileIndex) {
    const RunInfo run = generator.runInfo(fileIndex);
    referenceMDNorm(setup, run, result.normalization);
    const EventTable events = generator.generate(fileIndex);
    result.eventsProcessed += events.size();
    referenceBinMD(setup, events, result.signal,
                   trackErrors ? &*result.signalErrorSq : nullptr);
  }
  result.crossSection =
      referenceCrossSection(result.signal, result.normalization);
  if (trackErrors) {
    result.crossSectionErrorSq = referenceCrossSectionErrorSq(
        *result.signalErrorSq, result.normalization);
  }
  return result;
}

} // namespace vates::verify
