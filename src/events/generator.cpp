#include "vates/events/generator.hpp"

#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"
#include "vates/units/units.hpp"

#include <algorithm>
#include <cmath>

namespace vates {

namespace {
/// Deterministic per-reflection amplitude factor in [0.25, 1.25): a
/// cheap stand-in for structure factors so Bragg peaks differ in
/// brightness run-over-run reproducibly.
double reflectionFactor(int h, int k, int l) noexcept {
  auto u = static_cast<std::uint64_t>(static_cast<std::int64_t>(h) * 73856093 ^
                                      static_cast<std::int64_t>(k) * 19349663 ^
                                      static_cast<std::int64_t>(l) * 83492791);
  u ^= u >> 33;
  u *= 0xff51afd7ed558ccdULL;
  u ^= u >> 33;
  return 0.25 + static_cast<double>(u >> 11) * 0x1.0p-53;
}
} // namespace

EventGenerator::EventGenerator(const WorkloadSpec& spec,
                               const Instrument& instrument,
                               const OrientedLattice& lattice,
                               const FluxSpectrum& flux)
    : spec_(spec), instrument_(&instrument), lattice_(&lattice), flux_(&flux) {
  VATES_REQUIRE(instrument.nDetectors() == spec.nDetectors,
                "instrument size does not match the workload spec");
}

RunInfo EventGenerator::runInfo(std::size_t fileIndex) const {
  VATES_REQUIRE(fileIndex < spec_.nFiles, "file index out of range");
  const auto band =
      units::momentumBandFromWavelengthBand(spec_.lambdaMin, spec_.lambdaMax);
  return RunInfo{static_cast<std::uint32_t>(fileIndex),
                 spec_.goniometerForRun(fileIndex).R(), spec_.protonCharge,
                 band.kMin, band.kMax};
}

double EventGenerator::intensity(const V3& hkl) const {
  // Nearest reciprocal-lattice node.
  const int h = static_cast<int>(std::lround(hkl.x));
  const int k = static_cast<int>(std::lround(hkl.y));
  const int l = static_cast<int>(std::lround(hkl.z));
  const V3 delta{hkl.x - h, hkl.y - k, hkl.z - l};

  // Distance measured in Å⁻¹ (through B) so peak widths are isotropic in
  // Q rather than in index units.
  const V3 deltaQ = lattice_->lattice().B() * delta;
  const double d2 = deltaQ.norm2();
  const double sigma = spec_.braggSigma;
  const double gauss = std::exp(-d2 / (2.0 * sigma * sigma));

  // Debye-Waller-like falloff with |Q| keeps far peaks dimmer.
  const V3 q = lattice_->lattice().B() * hkl;
  const double falloff = std::exp(-0.02 * q.norm2());

  const bool isOrigin = (h == 0 && k == 0 && l == 0);
  // Systematic absences: centered lattices have no Bragg intensity at
  // extinct reflections (e.g. Bixbyite's Ia-3: h+k+l odd).
  const bool allowed = reflectionAllowed(spec_.centering, h, k, l);
  const double bragg =
      (isOrigin || !allowed)
          ? 0.0
          : spec_.braggAmplitude * reflectionFactor(h, k, l) * falloff * gauss;
  return spec_.diffuseBackground + bragg;
}

template <typename Emit>
void EventGenerator::forEachDraw(std::size_t fileIndex, Emit&& emit) const {
  const RunInfo run = runInfo(fileIndex);
  const M33 rInverse = run.goniometerR.transposed();
  const M33& ubInverse = lattice_->UBinv();

  Xoshiro256 rng(spec_.seed, fileIndex);
  const std::size_t nDetectors = instrument_->nDetectors();

  for (std::size_t i = 0; i < spec_.eventsPerFile; ++i) {
    const std::size_t detector = rng.uniformInt(nDetectors);
    // Sample the incident momentum from the moderator spectrum so the
    // event distribution matches what the flux normalization assumes.
    const double k = flux_->momentumAtQuantile(rng.uniform());
    const V3 qLab = instrument_->qLabDirection(detector) * k;
    const V3 qSample = rInverse * qLab;
    const V3 hkl = ubInverse * (qSample / units::kTwoPi);
    emit(detector, k, qSample, intensity(hkl));
  }
}

EventTable EventGenerator::generate(std::size_t fileIndex) const {
  EventTable table;
  table.reserve(spec_.eventsPerFile);
  const auto runIndexValue = static_cast<double>(fileIndex);
  forEachDraw(fileIndex, [&](std::size_t detector, double /*k*/,
                             const V3& qSample, double weight) {
    table.append(weight, weight, runIndexValue,
                 static_cast<double>(detector), runIndexValue, qSample);
  });
  return table;
}

RawEventList EventGenerator::generateRaw(std::size_t fileIndex) const {
  RawEventList raw;
  raw.reserve(spec_.eventsPerFile);
  // SNS runs at 60 Hz; spread the run's events uniformly over pulses so
  // pulse indices look like a real accumulation.
  const std::size_t eventsPerPulse =
      std::max<std::size_t>(1, spec_.eventsPerFile / 36000);
  std::size_t emitted = 0;
  forEachDraw(fileIndex, [&](std::size_t detector, double k,
                             const V3& /*qSample*/, double weight) {
    const double lambda = units::wavelengthFromMomentum(k);
    const double tof = units::tofFromWavelength(
        lambda, instrument_->totalFlightPath(detector));
    raw.append(static_cast<std::uint32_t>(detector), tof,
               static_cast<std::uint32_t>(emitted / eventsPerPulse), weight);
    ++emitted;
  });
  return raw;
}

} // namespace vates
