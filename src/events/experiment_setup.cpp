#include "vates/events/experiment_setup.hpp"

#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"
#include "vates/units/units.hpp"

namespace vates {

namespace {
Instrument buildInstrument(const WorkloadSpec& spec) {
  if (spec.instrument == "corelli") {
    return Instrument::corelliLike(spec.nDetectors);
  }
  if (spec.instrument == "topaz") {
    return Instrument::topazLike(spec.nDetectors);
  }
  throw InvalidArgument("unknown instrument '" + spec.instrument +
                        "' (expected 'corelli' or 'topaz')");
}

FluxSpectrum buildFlux(const WorkloadSpec& spec) {
  const auto band =
      units::momentumBandFromWavelengthBand(spec.lambdaMin, spec.lambdaMax);
  // A moderator-like spectrum peaked in the thermal range; total weight
  // 1 so normalization magnitudes stay O(solid angle · charge).
  const double lambdaPeak = 0.4 * (spec.lambdaMin + spec.lambdaMax);
  return FluxSpectrum::moderatorMaxwellian(band.kMin, band.kMax, 512,
                                           lambdaPeak, 1.0);
}
} // namespace

ExperimentSetup::ExperimentSetup(const WorkloadSpec& spec)
    : spec_(spec), instrument_(buildInstrument(spec)),
      lattice_(spec.lattice(), spec.uVector, spec.vVector),
      flux_(buildFlux(spec)), pointGroup_(spec.pointGroup),
      projection_(spec.projection()),
      symmetryMatrices_(pointGroup_.matrices()) {
  if (spec.maskFraction > 0.0) {
    const std::size_t nDetectors = instrument_.nDetectors();
    DetectorMask mask(nDetectors);
    if (spec.maskFraction >= 1.0) {
      for (std::size_t d = 0; d < nDetectors; ++d) {
        mask.mask(d);
      }
    } else {
      // Seeded per spec so the same workload always masks the same
      // pixels, independent of call order.  The stream id spells "mask".
      Xoshiro256 rng(spec.effectiveMaskSeed(), /*streamId=*/0x6d61736bULL);
      for (std::size_t d = 0; d < nDetectors; ++d) {
        if (rng.uniform() < spec.maskFraction) {
          mask.mask(d);
        }
      }
    }
    mask_.emplace(std::move(mask));
  }
}

void ExperimentSetup::setDetectorMask(DetectorMask mask) {
  VATES_REQUIRE(mask.size() == instrument_.nDetectors(),
                "detector mask length must match the instrument");
  mask_.emplace(std::move(mask));
}

Histogram3D ExperimentSetup::makeHistogram() const {
  return Histogram3D(
      BinAxis(projection_.axisLabel(0), spec_.extentMin[0], spec_.extentMax[0],
              spec_.bins[0]),
      BinAxis(projection_.axisLabel(1), spec_.extentMin[1], spec_.extentMax[1],
              spec_.bins[1]),
      BinAxis(projection_.axisLabel(2), spec_.extentMin[2], spec_.extentMax[2],
              spec_.bins[2]),
      projection_);
}

EventGenerator ExperimentSetup::makeGenerator() const {
  return EventGenerator(spec_, instrument_, lattice_, flux_);
}

} // namespace vates
