#include "vates/events/md_box_tree.hpp"

#include "vates/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vates {

namespace {
/// Whole-box containment / overlap helpers for region queries.
bool boxInsideRegion(const V3& boxLo, const V3& boxHi, const V3& lo,
                     const V3& hi) {
  return boxLo.x >= lo.x && boxHi.x <= hi.x && boxLo.y >= lo.y &&
         boxHi.y <= hi.y && boxLo.z >= lo.z && boxHi.z <= hi.z;
}

bool boxOverlapsRegion(const V3& boxLo, const V3& boxHi, const V3& lo,
                       const V3& hi) {
  return boxLo.x < hi.x && boxHi.x > lo.x && boxLo.y < hi.y &&
         boxHi.y > lo.y && boxLo.z < hi.z && boxHi.z > lo.z;
}

bool pointInRegion(const V3& p, const V3& lo, const V3& hi) {
  return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
         p.z >= lo.z && p.z < hi.z;
}
} // namespace

MDBoxTree::MDBoxTree(const EventTable& events, MDBoxOptions options)
    : events_(&events), options_(options) {
  VATES_REQUIRE(options_.leafCapacity >= 1, "leaf capacity must be >= 1");
  VATES_REQUIRE(options_.splitFactor >= 2, "split factor must be >= 2");

  // Bounding box of all events, padded so max-coordinate events fall
  // strictly inside (boxes use half-open intervals).
  V3 lo{std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity()};
  V3 hi = -lo;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const V3 q = events.qSample(i);
    lo.x = std::min(lo.x, q.x);
    lo.y = std::min(lo.y, q.y);
    lo.z = std::min(lo.z, q.z);
    hi.x = std::max(hi.x, q.x);
    hi.y = std::max(hi.y, q.y);
    hi.z = std::max(hi.z, q.z);
  }
  if (events.empty()) {
    lo = V3{-1, -1, -1};
    hi = V3{1, 1, 1};
  }
  for (std::size_t axis = 0; axis < 3; ++axis) {
    const double pad = std::max(1e-9, 1e-9 * std::fabs(hi[axis])) +
                       (hi[axis] - lo[axis]) * 1e-6;
    hi[axis] += pad;
  }
  build(lo, hi);
}

MDBoxTree::MDBoxTree(const EventTable& events, const V3& lo, const V3& hi,
                     MDBoxOptions options)
    : events_(&events), options_(options) {
  VATES_REQUIRE(options_.leafCapacity >= 1, "leaf capacity must be >= 1");
  VATES_REQUIRE(options_.splitFactor >= 2, "split factor must be >= 2");
  VATES_REQUIRE(lo.x < hi.x && lo.y < hi.y && lo.z < hi.z,
                "degenerate box bounds");
  build(lo, hi);
}

void MDBoxTree::build(const V3& lo, const V3& hi) {
  const std::size_t n = events_->size();
  indices_.resize(n);
  // Events outside the explicit bounds are excluded up front.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pointInRegion(events_->qSample(i), lo, hi)) {
      indices_[kept++] = static_cast<std::uint32_t>(i);
    }
  }
  indices_.resize(kept);

  Node root;
  root.lo = lo;
  root.hi = hi;
  root.eventBegin = 0;
  root.eventEnd = kept;
  root.depth = 0;
  nodes_.push_back(root);
  splitNode(0);
}

void MDBoxTree::splitNode(std::size_t nodeIndex) {
  // Copy the node fields we need: nodes_ may reallocate below.
  const V3 lo = nodes_[nodeIndex].lo;
  const V3 hi = nodes_[nodeIndex].hi;
  const std::size_t begin = nodes_[nodeIndex].eventBegin;
  const std::size_t end = nodes_[nodeIndex].eventEnd;
  const std::uint32_t depth = nodes_[nodeIndex].depth;
  const std::size_t count = end - begin;

  if (count <= options_.leafCapacity || depth >= options_.maxDepth) {
    return; // stays a leaf
  }

  const std::size_t f = options_.splitFactor;
  const std::size_t childCount = f * f * f;
  const V3 step{(hi.x - lo.x) / static_cast<double>(f),
                (hi.y - lo.y) / static_cast<double>(f),
                (hi.z - lo.z) / static_cast<double>(f)};

  // Bucket the node's events by child octant (stable counting sort so
  // rebuilt trees are deterministic).
  auto childOf = [&](const V3& q) {
    auto cell = [&](double value, double low, double width) {
      auto c = static_cast<std::size_t>((value - low) / width);
      return c >= f ? f - 1 : c;
    };
    const std::size_t cx = cell(q.x, lo.x, step.x);
    const std::size_t cy = cell(q.y, lo.y, step.y);
    const std::size_t cz = cell(q.z, lo.z, step.z);
    return (cx * f + cy) * f + cz;
  };

  std::vector<std::size_t> counts(childCount, 0);
  for (std::size_t i = begin; i < end; ++i) {
    counts[childOf(events_->qSample(indices_[i]))]++;
  }
  std::vector<std::size_t> offsets(childCount, 0);
  std::size_t running = 0;
  for (std::size_t c = 0; c < childCount; ++c) {
    offsets[c] = running;
    running += counts[c];
  }
  std::vector<std::uint32_t> reordered(count);
  {
    std::vector<std::size_t> cursor = offsets;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t eventIndex = indices_[i];
      reordered[cursor[childOf(events_->qSample(eventIndex))]++] = eventIndex;
    }
  }
  std::copy(reordered.begin(), reordered.end(),
            indices_.begin() + static_cast<std::ptrdiff_t>(begin));

  // Create the children and recurse.
  const std::size_t firstChild = nodes_.size();
  nodes_[nodeIndex].firstChild = firstChild;
  for (std::size_t cx = 0; cx < f; ++cx) {
    for (std::size_t cy = 0; cy < f; ++cy) {
      for (std::size_t cz = 0; cz < f; ++cz) {
        const std::size_t c = (cx * f + cy) * f + cz;
        Node child;
        child.lo = V3{lo.x + step.x * static_cast<double>(cx),
                      lo.y + step.y * static_cast<double>(cy),
                      lo.z + step.z * static_cast<double>(cz)};
        child.hi = V3{child.lo.x + step.x, child.lo.y + step.y,
                      child.lo.z + step.z};
        child.eventBegin = begin + offsets[c];
        child.eventEnd = child.eventBegin + counts[c];
        child.depth = depth + 1;
        nodes_.push_back(child);
      }
    }
  }
  for (std::size_t c = 0; c < childCount; ++c) {
    splitNode(firstChild + c);
  }
}

std::size_t MDBoxTree::nLeaves() const noexcept {
  std::size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.firstChild == kNoChild) {
      ++leaves;
    }
  }
  return leaves;
}

std::size_t MDBoxTree::maxDepthUsed() const noexcept {
  std::size_t deepest = 0;
  for (const Node& node : nodes_) {
    deepest = std::max<std::size_t>(deepest, node.depth);
  }
  return deepest;
}

MDBoxTree::BoxInfo MDBoxTree::boxInfo(std::size_t index) const {
  VATES_REQUIRE(index < nodes_.size(), "box index out of range");
  const Node& node = nodes_[index];
  return BoxInfo{node.lo, node.hi, node.depth,
                 node.eventEnd - node.eventBegin,
                 node.firstChild == kNoChild};
}

void MDBoxTree::forEachLeaf(
    const std::function<void(const BoxInfo&,
                             std::span<const std::uint32_t>)>& visit) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.firstChild != kNoChild) {
      continue;
    }
    visit(boxInfo(i),
          std::span<const std::uint32_t>(indices_.data() + node.eventBegin,
                                         node.eventEnd - node.eventBegin));
  }
}

double MDBoxTree::regionSum(std::size_t nodeIndex, const V3& lo,
                            const V3& hi) const {
  const Node& node = nodes_[nodeIndex];
  if (!boxOverlapsRegion(node.lo, node.hi, lo, hi)) {
    return 0.0;
  }
  if (boxInsideRegion(node.lo, node.hi, lo, hi)) {
    // Whole box contained: sum without per-event tests.
    double sum = 0.0;
    for (std::size_t i = node.eventBegin; i < node.eventEnd; ++i) {
      sum += events_->signal(indices_[i]);
    }
    return sum;
  }
  if (node.firstChild == kNoChild) {
    // Boundary leaf: exact per-event test.
    double sum = 0.0;
    for (std::size_t i = node.eventBegin; i < node.eventEnd; ++i) {
      const std::uint32_t eventIndex = indices_[i];
      if (pointInRegion(events_->qSample(eventIndex), lo, hi)) {
        sum += events_->signal(eventIndex);
      }
    }
    return sum;
  }
  double sum = 0.0;
  const std::size_t childCount =
      options_.splitFactor * options_.splitFactor * options_.splitFactor;
  for (std::size_t c = 0; c < childCount; ++c) {
    sum += regionSum(node.firstChild + c, lo, hi);
  }
  return sum;
}

double MDBoxTree::signalInRegion(const V3& lo, const V3& hi) const {
  if (nodes_.empty()) {
    return 0.0;
  }
  return regionSum(0, lo, hi);
}

} // namespace vates
