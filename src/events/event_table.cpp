#include "vates/events/event_table.hpp"

#include "vates/support/error.hpp"

namespace vates {

EventTable::EventTable(std::size_t nEvents) { resize(nEvents); }

void EventTable::reserve(std::size_t nEvents) {
  for (auto& column : columns_) {
    column.reserve(nEvents);
  }
}

void EventTable::resize(std::size_t nEvents) {
  for (auto& column : columns_) {
    column.resize(nEvents, 0.0);
  }
}

void EventTable::clear() noexcept {
  for (auto& column : columns_) {
    column.clear();
  }
}

void EventTable::append(double signalValue, double errorSqValue,
                        double runIndexValue, double detectorIdValue,
                        double goniometerIndexValue, const V3& qSampleValue) {
  columns_[Signal].push_back(signalValue);
  columns_[ErrorSq].push_back(errorSqValue);
  columns_[RunIndex].push_back(runIndexValue);
  columns_[DetectorId].push_back(detectorIdValue);
  columns_[GoniometerIndex].push_back(goniometerIndexValue);
  columns_[Qx].push_back(qSampleValue.x);
  columns_[Qy].push_back(qSampleValue.y);
  columns_[Qz].push_back(qSampleValue.z);
}

double EventTable::totalSignal() const noexcept {
  double sum = 0.0;
  for (double value : columns_[Signal]) {
    sum += value;
  }
  return sum;
}

void EventTable::toRowMajor(std::span<double> out) const {
  const std::size_t n = size();
  VATES_REQUIRE(out.size() == n * kColumns, "row-major buffer size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < kColumns; ++c) {
      out[i * kColumns + c] = columns_[c][i];
    }
  }
}

EventTable EventTable::fromRowMajor(std::span<const double> rows) {
  VATES_REQUIRE(rows.size() % kColumns == 0,
                "row-major block is not a multiple of 8 doubles");
  const std::size_t n = rows.size() / kColumns;
  EventTable table(n);
  // The transpose: disk rows are events, memory columns are fields.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < kColumns; ++c) {
      table.columns_[c][i] = rows[i * kColumns + c];
    }
  }
  return table;
}

} // namespace vates
