#include "vates/events/workload.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vates {

namespace {
std::size_t scaled(std::size_t value, double scale, std::size_t minimum) {
  const double scaledValue = static_cast<double>(value) * scale;
  return std::max<std::size_t>(minimum,
                               static_cast<std::size_t>(std::llround(scaledValue)));
}
} // namespace

Lattice WorkloadSpec::lattice() const {
  return Lattice(latticeA, latticeB, latticeC, latticeAlpha, latticeBeta,
                 latticeGamma);
}

Projection WorkloadSpec::projection() const {
  return Projection(projectionU, projectionV, projectionW);
}

Goniometer WorkloadSpec::goniometerForRun(std::size_t fileIndex) const {
  return Goniometer::omega(omegaStartDeg +
                           omegaStepDeg * static_cast<double>(fileIndex));
}

WorkloadSpec WorkloadSpec::benzilCorelli(double scale) {
  VATES_REQUIRE(scale > 0.0, "scale must be positive");
  WorkloadSpec spec;
  spec.name = "benzil-corelli";
  // Benzil: trigonal, hexagonal axes a = 8.376 Å, c = 13.700 Å.
  spec.latticeA = spec.latticeB = 8.376;
  spec.latticeC = 13.700;
  spec.latticeGamma = 120.0;
  spec.uVector = V3{0, 0, 1};
  spec.vVector = V3{1, 0, 0};
  spec.pointGroup = "-3"; // 6 symmetry transformations (Table II)
  spec.instrument = "corelli";
  spec.nFiles = 36;
  spec.nDetectors = scaled(372000, scale, 64);
  spec.eventsPerFile = scaled(40000000 / 36, scale, 256);
  spec.omegaStartDeg = 0.0;
  spec.omegaStepDeg = 5.0;
  spec.protonCharge = 1.0;
  spec.lambdaMin = 0.7;
  spec.lambdaMax = 2.9;
  // ([H,H],[H,-H],[L]) slice with (603,603,1) bins.
  spec.bins = {603, 603, 1};
  spec.extentMin = {-7.5375, -7.5375, -0.1};
  spec.extentMax = {7.5375, 7.5375, 0.1};
  spec.projectionU = V3{1, 1, 0};
  spec.projectionV = V3{1, -1, 0};
  spec.projectionW = V3{0, 0, 1};
  spec.braggAmplitude = 90.0;
  spec.braggSigma = 0.05;
  spec.diffuseBackground = 0.6; // benzil is a diffuse-scattering case
  spec.seed = 0xbe9211c09e111ULL;
  return spec;
}

WorkloadSpec WorkloadSpec::bixbyiteTopaz(double scale) {
  VATES_REQUIRE(scale > 0.0, "scale must be positive");
  WorkloadSpec spec;
  spec.name = "bixbyite-topaz";
  // Bixbyite (Mn,Fe)₂O₃: cubic Ia-3, a = 9.411 Å.
  spec.latticeA = spec.latticeB = spec.latticeC = 9.411;
  spec.uVector = V3{0, 0, 1};
  spec.vVector = V3{1, 1, 0};
  spec.pointGroup = "m-3"; // 24 symmetry transformations (Table II)
  spec.centering = Centering::I; // Ia-3: h+k+l odd reflections extinct
  spec.instrument = "topaz";
  spec.nFiles = 22;
  spec.nDetectors = scaled(1600000, scale, 64);
  spec.eventsPerFile = scaled(280000000 / 22, scale, 256);
  // Omega scan centered away from zero: at ω = 0 the beam lies exactly
  // along c* and no trajectory reaches the thin L slice, so a real
  // measurement (and Fig. 4's single-run panel) starts mid-scan.
  spec.omegaStartDeg = -84.0;
  spec.omegaStepDeg = 8.0;
  spec.protonCharge = 1.0;
  spec.lambdaMin = 0.4;
  spec.lambdaMax = 3.5;
  // ([H],[K],[L]) slice with (601,601,1) bins; the L slab is thick
  // enough (±0.5) for single-run coverage on this compact instrument.
  spec.bins = {601, 601, 1};
  spec.extentMin = {-10.0167, -10.0167, -0.5};
  spec.extentMax = {10.0167, 10.0167, 0.5};
  spec.projectionU = V3{1, 0, 0};
  spec.projectionV = V3{0, 1, 0};
  spec.projectionW = V3{0, 0, 1};
  spec.braggAmplitude = 150.0;
  spec.braggSigma = 0.045;
  spec.diffuseBackground = 0.3;
  spec.seed = 0xb1cb711e70b42ULL;
  return spec;
}

std::string WorkloadSpec::characteristicsTable() const {
  std::ostringstream os;
  os << "Use-case characteristics: " << name << '\n';
  os << strfmt("  %-28s %s\n", "Files:", withCommas(nFiles).c_str());
  os << strfmt("  %-28s %s\n", "Symmetry transformations:", pointGroup.c_str());
  os << strfmt("  %-28s %s\n", "Events (total):",
               withCommas(totalEvents()).c_str());
  os << strfmt("  %-28s %s\n", "Detectors:", withCommas(nDetectors).c_str());
  os << strfmt("  %-28s (%zu,%zu,%zu)\n", "Bins:", bins[0], bins[1], bins[2]);
  const Projection proj = projection();
  os << strfmt("  %-28s (%s,%s,%s)\n", "Symmetrized projections:",
               proj.axisLabel(0).c_str(), proj.axisLabel(1).c_str(),
               proj.axisLabel(2).c_str());
  return os.str();
}

} // namespace vates
