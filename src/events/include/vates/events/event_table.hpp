#pragma once
/// \file event_table.hpp
/// The in-memory neutron event table — counterpart of the
/// MDEventWorkspace slice the paper's proxies load ("an HDF5 array with
/// 8 columns and a row for each neutron event").
///
/// Storage is struct-of-arrays (§III-B: "instead of sorting an array of
/// structs, we sort an array of indices using primitive types" — the
/// same HPC-oriented data-structure philosophy applies to the event
/// table itself).  The on-disk layout is row-major 8×N, so loading
/// performs the row→column transpose that the paper's UpdateEvents
/// stage measures; see io/event_file.hpp.
///
/// Columns (matching Mantid's MDEvent save order closely enough for the
/// workload to be faithful):
///   0 signal       — event weight
///   1 errorSq      — squared error of the weight
///   2 runIndex     — which experiment run produced the event
///   3 detectorId   — detector pixel that fired
///   4 goniometerIndex — goniometer setting (== runIndex here)
///   5,6,7 Qx,Qy,Qz — momentum transfer in the *sample* frame (Å⁻¹)

#include "vates/geometry/vec3.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vates {

class EventTable {
public:
  static constexpr std::size_t kColumns = 8;

  enum Column : std::size_t {
    Signal = 0,
    ErrorSq = 1,
    RunIndex = 2,
    DetectorId = 3,
    GoniometerIndex = 4,
    Qx = 5,
    Qy = 6,
    Qz = 7,
  };

  EventTable() = default;

  /// Pre-size all columns.
  explicit EventTable(std::size_t nEvents);

  std::size_t size() const noexcept { return columns_[0].size(); }
  bool empty() const noexcept { return size() == 0; }

  void reserve(std::size_t nEvents);
  void resize(std::size_t nEvents);
  void clear() noexcept;

  /// Append one event.
  void append(double signal, double errorSq, double runIndex,
              double detectorId, double goniometerIndex, const V3& qSample);

  /// Column access.
  std::span<double> column(Column c) noexcept { return columns_[c]; }
  std::span<const double> column(Column c) const noexcept {
    return columns_[c];
  }

  double signal(std::size_t i) const { return columns_[Signal][i]; }
  double errorSq(std::size_t i) const { return columns_[ErrorSq][i]; }
  std::uint32_t runIndex(std::size_t i) const {
    return static_cast<std::uint32_t>(columns_[RunIndex][i]);
  }
  std::uint32_t detectorId(std::size_t i) const {
    return static_cast<std::uint32_t>(columns_[DetectorId][i]);
  }
  V3 qSample(std::size_t i) const {
    return V3{columns_[Qx][i], columns_[Qy][i], columns_[Qz][i]};
  }

  /// Sum of the signal column.
  double totalSignal() const noexcept;

  /// Serialize to a row-major 8×N block (one row per event) — the
  /// on-disk order.  Out must have size() * kColumns elements.
  void toRowMajor(std::span<double> out) const;

  /// Rebuild from a row-major 8×N block; this is the transpose the
  /// UpdateEvents stage performs.
  static EventTable fromRowMajor(std::span<const double> rows);

  bool operator==(const EventTable& other) const noexcept {
    return columns_ == other.columns_;
  }

private:
  std::array<std::vector<double>, kColumns> columns_;
};

} // namespace vates
