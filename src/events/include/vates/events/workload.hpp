#pragma once
/// \file workload.hpp
/// Workload specifications matching the paper's Table II.
///
/// A WorkloadSpec carries everything needed to synthesize one of the two
/// use-cases at any scale: crystal, orientation, point group, instrument
/// size, file/event counts, wavelength band, histogram binning and
/// projection.  `scale` multiplies event and detector counts linearly
/// (scale = 1.0 reproduces the paper's sizes: Benzil 36 files × ~1.1M
/// events on 372K detectors; Bixbyite 22 files × ~12.7M events on 1.6M
/// detectors); bin grids are kept at full size at every scale because
/// the paper's kernels are dominated by per-trajectory bin-plane work.

#include "vates/geometry/centering.hpp"
#include "vates/geometry/goniometer.hpp"
#include "vates/geometry/lattice.hpp"
#include "vates/histogram/binning.hpp"

#include <array>
#include <cstdint>
#include <string>

namespace vates {

struct WorkloadSpec {
  std::string name;

  // Crystal and orientation.
  double latticeA = 1.0, latticeB = 1.0, latticeC = 1.0;
  double latticeAlpha = 90.0, latticeBeta = 90.0, latticeGamma = 90.0;
  V3 uVector{0, 0, 1}; ///< HKL along the beam
  V3 vVector{1, 0, 0}; ///< HKL in the horizontal plane
  std::string pointGroup = "1";
  /// Bravais centering: systematically absent reflections carry no
  /// Bragg intensity in the synthetic data.
  Centering centering = Centering::P;

  // Instrument and ensemble.
  std::string instrument = "corelli"; ///< "corelli" or "topaz"
  std::size_t nFiles = 1;
  std::size_t nDetectors = 1000;
  std::size_t eventsPerFile = 100000;
  double omegaStartDeg = 0.0; ///< goniometer omega of run 0
  double omegaStepDeg = 5.0;  ///< omega increment per run
  double protonCharge = 1.0;  ///< accumulated charge per run (arb. units)

  // Wavelength band.
  double lambdaMin = 0.6; ///< Å
  double lambdaMax = 3.0; ///< Å

  // Output histogram.
  std::array<std::size_t, 3> bins{601, 601, 1};
  std::array<double, 3> extentMin{-10.0, -10.0, -0.5};
  std::array<double, 3> extentMax{10.0, 10.0, 0.5};
  V3 projectionU{1, 0, 0};
  V3 projectionV{0, 1, 0};
  V3 projectionW{0, 0, 1};

  // Synthetic-signal shape.
  double braggAmplitude = 120.0; ///< peak weight scale
  double braggSigma = 0.06;      ///< HKL-space width of Bragg peaks
  double diffuseBackground = 0.4;

  std::uint64_t seed = 0x5eed0123456789abULL;

  // Detector masking (beam-stop shadows, dead tubes).  When
  // maskFraction > 0, ExperimentSetup attaches a seeded-random detector
  // mask at construction: each detector is masked independently with
  // this probability (>= 1.0 masks every detector).  The selection is
  // deterministic per (maskSeed, detector index), so the same spec
  // always masks the same pixels.
  double maskFraction = 0.0;
  /// Seed of the mask selection stream; 0 (the default) derives it from
  /// `seed`, so mask and events share one reproducibility knob.
  std::uint64_t maskSeed = 0;

  /// The seed the mask stream actually uses.
  std::uint64_t effectiveMaskSeed() const noexcept {
    return maskSeed != 0 ? maskSeed : seed;
  }

  /// Total events across all files.
  std::size_t totalEvents() const noexcept { return nFiles * eventsPerFile; }

  /// Derived objects.
  Lattice lattice() const;
  Projection projection() const;
  Goniometer goniometerForRun(std::size_t fileIndex) const;

  /// The paper's Benzil-on-CORELLI case (Table II column 1), with
  /// detector and event counts multiplied by \p scale.
  static WorkloadSpec benzilCorelli(double scale = 1.0);

  /// The paper's Bixbyite-on-TOPAZ case (Table II column 2).
  static WorkloadSpec bixbyiteTopaz(double scale = 1.0);

  /// Render the Table II-style characteristics block.
  std::string characteristicsTable() const;
};

} // namespace vates
