#pragma once
/// \file raw_events.hpp
/// Raw detector events — the stage-(ii) data of the paper's Fig. 1
/// workflow, before any reduction.
///
/// ORNL instruments record event-mode data as (detector pixel id,
/// neutron time-of-flight, proton-pulse wall-clock) triples (Granroth
/// et al., the paper's [13]).  This list is what LoadEventNexus parses;
/// ConvertToMD (convert_to_md.hpp) turns it into the Q-space EventTable
/// the MDNorm/BinMD kernels consume.  Synthetic weights ride along so
/// the generator's intensity model survives the pipeline.

#include <cstdint>
#include <span>
#include <vector>

namespace vates {

/// Struct-of-arrays raw event list.
class RawEventList {
public:
  RawEventList() = default;
  explicit RawEventList(std::size_t nEvents);

  std::size_t size() const noexcept { return detectorIds_.size(); }
  bool empty() const noexcept { return detectorIds_.empty(); }

  void reserve(std::size_t nEvents);
  void clear() noexcept;

  void append(std::uint32_t detectorId, double tofMicroseconds,
              std::uint32_t pulseIndex, double weight);

  std::uint32_t detectorId(std::size_t i) const { return detectorIds_[i]; }
  double tof(std::size_t i) const { return tofs_[i]; }
  std::uint32_t pulseIndex(std::size_t i) const { return pulseIndices_[i]; }
  double weight(std::size_t i) const { return weights_[i]; }

  std::span<const std::uint32_t> detectorIds() const noexcept {
    return detectorIds_;
  }
  std::span<const double> tofs() const noexcept { return tofs_; }
  std::span<const std::uint32_t> pulseIndices() const noexcept {
    return pulseIndices_;
  }
  std::span<const double> weights() const noexcept { return weights_; }

  /// Sum of event weights.
  double totalWeight() const noexcept;

  bool operator==(const RawEventList& other) const noexcept {
    return detectorIds_ == other.detectorIds_ && tofs_ == other.tofs_ &&
           pulseIndices_ == other.pulseIndices_ && weights_ == other.weights_;
  }

private:
  std::vector<std::uint32_t> detectorIds_;
  std::vector<double> tofs_;
  std::vector<std::uint32_t> pulseIndices_;
  std::vector<double> weights_;
};

} // namespace vates
