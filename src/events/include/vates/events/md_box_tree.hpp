#pragma once
/// \file md_box_tree.hpp
/// Adaptive event box hierarchy — the counterpart of Mantid's
/// MDEventWorkspace box structure.
///
/// The paper (§III-B) contrasts its proxies' single-box BinMD with the
/// production behavior: "Mantid's BinMD uses a more adaptive strategy
/// by having a hierarchy of boxes with equal numbers of events."  This
/// class reproduces that structure: an octree-like recursive split of
/// Q-space, where any box holding more than `leafCapacity` events
/// splits into splitFactor³ children until capacity or `maxDepth` is
/// reached.  Dense regions (Bragg peaks) therefore end up in deep,
/// small boxes; empty space stays coarse.
///
/// It backs the Garnet-style baseline's BinMD (box-by-box traversal)
/// and supports region queries the way downstream visualization slices
/// an MDEventWorkspace.  Events are not copied: the tree stores a
/// permutation of indices into the borrowed EventTable.

#include "vates/events/event_table.hpp"
#include "vates/geometry/vec3.hpp"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace vates {

struct MDBoxOptions {
  /// Maximum events a leaf may hold before it splits.
  std::size_t leafCapacity = 64;
  /// Hard depth bound (root is depth 0).
  std::size_t maxDepth = 12;
  /// Children per dimension per split (Mantid's SplitInto; 2 = octree).
  std::size_t splitFactor = 2;
};

class MDBoxTree {
public:
  struct BoxInfo {
    V3 lo;
    V3 hi;
    std::size_t depth = 0;
    std::size_t eventCount = 0;
    bool isLeaf = true;
  };

  /// Build over \p events' Q_sample coordinates (the table must outlive
  /// the tree).  Bounds are the events' bounding box, slightly padded;
  /// an explicit-bounds overload serves fixed-extent workspaces.
  explicit MDBoxTree(const EventTable& events, MDBoxOptions options = {});
  MDBoxTree(const EventTable& events, const V3& lo, const V3& hi,
            MDBoxOptions options = {});

  const MDBoxOptions& options() const noexcept { return options_; }

  std::size_t totalEvents() const noexcept { return indices_.size(); }
  std::size_t nBoxes() const noexcept { return nodes_.size(); }
  std::size_t nLeaves() const noexcept;
  std::size_t maxDepthUsed() const noexcept;

  /// Info for box \p index (0 = root, then breadth-independent order).
  BoxInfo boxInfo(std::size_t index) const;

  /// Visit every leaf with its event indices (into the source table).
  void forEachLeaf(
      const std::function<void(const BoxInfo&,
                               std::span<const std::uint32_t>)>& visit) const;

  /// Sum of event signal with Q_sample inside [lo, hi) — exact
  /// (per-event test inside boundary boxes, whole-box skip/take
  /// elsewhere), the access pattern of a slice query.
  double signalInRegion(const V3& lo, const V3& hi) const;

  const EventTable& events() const noexcept { return *events_; }

private:
  struct Node {
    V3 lo;
    V3 hi;
    std::size_t firstChild = kNoChild; ///< splitFactor³ consecutive nodes
    std::size_t eventBegin = 0;        ///< into indices_, leaves only
    std::size_t eventEnd = 0;
    std::uint32_t depth = 0;
  };
  static constexpr std::size_t kNoChild = static_cast<std::size_t>(-1);

  void build(const V3& lo, const V3& hi);
  void splitNode(std::size_t nodeIndex);
  double regionSum(std::size_t nodeIndex, const V3& lo, const V3& hi) const;

  const EventTable* events_;
  MDBoxOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> indices_;
};

} // namespace vates
