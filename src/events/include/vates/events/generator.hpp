#pragma once
/// \file generator.hpp
/// Synthetic event generation — the stand-in for the proprietary
/// CORELLI/TOPAZ NeXus datasets (8.5 GB / 206 GB) that the paper's
/// artifacts load from SNS filesystems.
///
/// Events are produced along the *physical* measurement path so that the
/// resulting histograms have the paper's qualitative structure
/// (Fig. 4): for each event we draw a detector pixel uniformly and an
/// incident momentum from the moderator flux distribution, form
/// Q_lab = k·(beam − detDir), rotate into the sample frame with the
/// run's goniometer, and assign a weight from a Bragg-plus-diffuse
/// intensity model evaluated at the fractional Miller indices.  A
/// single run therefore covers only the region of reciprocal space its
/// detector trajectories sweep — which is exactly why the multi-run,
/// symmetrized panels of Fig. 4 fill in.
///
/// Generation is deterministic per (spec.seed, fileIndex): files can be
/// produced in any order, in parallel, or on different MPI-style ranks
/// with identical results.

#include "vates/events/event_table.hpp"
#include "vates/events/raw_events.hpp"
#include "vates/events/workload.hpp"
#include "vates/flux/flux_spectrum.hpp"
#include "vates/geometry/instrument.hpp"
#include "vates/geometry/oriented_lattice.hpp"

#include <cstdint>
#include <memory>

namespace vates {

/// Per-run metadata (the paper's "events, rotations, charge, ..." LOAD).
struct RunInfo {
  std::uint32_t runIndex = 0;
  M33 goniometerR = M33::identity();
  double protonCharge = 1.0;
  double kMin = 0.0;
  double kMax = 0.0;
};

class EventGenerator {
public:
  /// The generator borrows the instrument/lattice/flux, which must
  /// outlive it (the pipeline owns all four).
  EventGenerator(const WorkloadSpec& spec, const Instrument& instrument,
                 const OrientedLattice& lattice, const FluxSpectrum& flux);

  const WorkloadSpec& spec() const noexcept { return spec_; }

  /// Metadata of run \p fileIndex (goniometer, charge, momentum band).
  RunInfo runInfo(std::size_t fileIndex) const;

  /// Generate the event table of run \p fileIndex (sample-frame Q —
  /// the already-converted MDEventWorkspace form).
  EventTable generate(std::size_t fileIndex) const;

  /// Generate the *raw* detector events of run \p fileIndex — the
  /// stage-(ii) (detector id, TOF, pulse) stream as the instrument DAQ
  /// records it.  Uses the same random draws as generate(), so
  /// convertToMD(generateRaw(i)) reproduces generate(i) up to TOF
  /// round-trip rounding.
  RawEventList generateRaw(std::size_t fileIndex) const;

  /// The intensity model: weight of an event at fractional \p hkl.
  /// Exposed for tests (e.g. peaks dominate background near integers).
  double intensity(const V3& hkl) const;

private:
  /// Shared draw loop: emit(detector, k, qSample, weight) per event.
  template <typename Emit>
  void forEachDraw(std::size_t fileIndex, Emit&& emit) const;

  WorkloadSpec spec_;
  const Instrument* instrument_;
  const OrientedLattice* lattice_;
  const FluxSpectrum* flux_;
};

} // namespace vates
