#pragma once
/// \file experiment_setup.hpp
/// Realizes a WorkloadSpec into the concrete objects every reduction
/// implementation needs: instrument geometry, oriented lattice, flux
/// spectrum, point group, projection, and output histogram shape.
/// Shared by the optimized pipeline (core), the Garnet-style baseline,
/// the benchmarks, and the examples — so all of them reduce *exactly*
/// the same experiment.

#include "vates/events/generator.hpp"
#include "vates/events/workload.hpp"
#include "vates/flux/flux_spectrum.hpp"
#include "vates/geometry/detector_mask.hpp"
#include "vates/geometry/instrument.hpp"
#include "vates/geometry/oriented_lattice.hpp"
#include "vates/geometry/symmetry.hpp"
#include "vates/histogram/histogram3d.hpp"

#include <optional>

namespace vates {

class ExperimentSetup {
public:
  /// Build everything from the spec.  Instrument construction is the
  /// only expensive part (O(nDetectors)).
  explicit ExperimentSetup(const WorkloadSpec& spec);

  const WorkloadSpec& spec() const noexcept { return spec_; }
  const Instrument& instrument() const noexcept { return instrument_; }
  const OrientedLattice& lattice() const noexcept { return lattice_; }
  const FluxSpectrum& flux() const noexcept { return flux_; }
  const PointGroup& pointGroup() const noexcept { return pointGroup_; }
  const Projection& projection() const noexcept { return projection_; }

  /// The symmetry operations as a flat matrix table.
  const std::vector<M33>& symmetryMatrices() const noexcept {
    return symmetryMatrices_;
  }

  /// Attach a detector mask (beam-stop shadows, dead tubes).  The
  /// reduction pipeline honors it on both sides of the cross-section:
  /// masked pixels contribute no normalization (MDNorm launches over a
  /// compacted active-detector list built once per reduction) and, in
  /// RawTof mode, their events are dropped by ConvertToMD.  The mask
  /// length must match the instrument's detector count.
  void setDetectorMask(DetectorMask mask);

  /// The attached mask, or nullptr when every pixel is live.
  const DetectorMask* detectorMask() const noexcept {
    return mask_ ? &*mask_ : nullptr;
  }

  /// A zeroed output histogram with the spec's binning and projection.
  Histogram3D makeHistogram() const;

  /// An event generator bound to this setup (borrows it; keep the setup
  /// alive while generating).
  EventGenerator makeGenerator() const;

private:
  WorkloadSpec spec_;
  Instrument instrument_;
  OrientedLattice lattice_;
  FluxSpectrum flux_;
  PointGroup pointGroup_;
  Projection projection_;
  std::vector<M33> symmetryMatrices_;
  std::optional<DetectorMask> mask_;
};

} // namespace vates
