#include "vates/events/raw_events.hpp"

namespace vates {

RawEventList::RawEventList(std::size_t nEvents) {
  detectorIds_.resize(nEvents, 0);
  tofs_.resize(nEvents, 0.0);
  pulseIndices_.resize(nEvents, 0);
  weights_.resize(nEvents, 0.0);
}

void RawEventList::reserve(std::size_t nEvents) {
  detectorIds_.reserve(nEvents);
  tofs_.reserve(nEvents);
  pulseIndices_.reserve(nEvents);
  weights_.reserve(nEvents);
}

void RawEventList::clear() noexcept {
  detectorIds_.clear();
  tofs_.clear();
  pulseIndices_.clear();
  weights_.clear();
}

void RawEventList::append(std::uint32_t detectorId, double tofMicroseconds,
                          std::uint32_t pulseIndex, double weight) {
  detectorIds_.push_back(detectorId);
  tofs_.push_back(tofMicroseconds);
  pulseIndices_.push_back(pulseIndex);
  weights_.push_back(weight);
}

double RawEventList::totalWeight() const noexcept {
  double sum = 0.0;
  for (double w : weights_) {
    sum += w;
  }
  return sum;
}

} // namespace vates
