#include "vates/cache/normalization_cache.hpp"

#include "vates/io/histogram_file.hpp"
#include "vates/io/nxlite.hpp"
#include "vates/support/error.hpp"
#include "vates/support/log.hpp"
#include "vates/support/strings.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace vates::cache {

namespace {

/// FNV-1a 64-bit — only a file-name disperser; correctness never rests
/// on it because every entry embeds (and every read compares) the
/// verbatim key string.
std::uint64_t fnv1a64(const std::string& text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr const char* kVersionDataset = "cache_version";
constexpr const char* kKindDataset = "cache_kind";
constexpr const char* kKeyDataset = "cache_key";
constexpr double kKindNormalization = 0.0;
constexpr double kKindPartialReduction = 1.0;

void writeKey(nx::Writer& writer, const std::string& key) {
  std::vector<std::uint32_t> codes(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    codes[i] = static_cast<unsigned char>(key[i]);
  }
  writer.writeUInt32(kKeyDataset, codes);
}

std::string readKey(nx::Reader& reader) {
  const std::vector<std::uint32_t> codes = reader.readUInt32(kKeyDataset);
  std::string key;
  key.reserve(codes.size());
  for (const std::uint32_t code : codes) {
    key.push_back(static_cast<char>(static_cast<unsigned char>(code)));
  }
  return key;
}

/// Why a read did not produce a usable entry.
enum class ReadFailure {
  Damaged,     ///< truncated / CRC mismatch / bad layout / stale version
  KeyMismatch, ///< intact entry for a *different* key (hash collision)
};

struct ReadOutcome {
  std::optional<Histogram3D> normalization; ///< set for norm entries
  std::optional<CachedReduction> reduction; ///< set for part entries
  std::optional<ReadFailure> failure;
};

/// Read + fully validate one entry file.  Never throws: every failure
/// mode (including IOError from the CRC checks) folds into `failure`.
ReadOutcome readEntryFile(const std::string& path, bool partial,
                          const std::string& expectedKey) {
  ReadOutcome outcome;
  try {
    nx::Reader reader(path);
    if (!reader.has(kVersionDataset) || !reader.has(kKindDataset) ||
        !reader.has(kKeyDataset)) {
      outcome.failure = ReadFailure::Damaged;
      return outcome;
    }
    if (reader.readScalar(kVersionDataset) !=
        static_cast<double>(kCacheFormatVersion)) {
      outcome.failure = ReadFailure::Damaged;
      return outcome;
    }
    const double expectedKind =
        partial ? kKindPartialReduction : kKindNormalization;
    if (reader.readScalar(kKindDataset) != expectedKind) {
      outcome.failure = ReadFailure::Damaged;
      return outcome;
    }
    if (readKey(reader) != expectedKey) {
      outcome.failure = ReadFailure::KeyMismatch;
      return outcome;
    }
    Histogram3D normalization = readHistogram(reader, "normalization");
    if (!partial) {
      outcome.normalization = std::move(normalization);
      return outcome;
    }
    CachedReduction content{
        static_cast<std::uint64_t>(reader.readScalar("files_reduced")),
        static_cast<std::uint64_t>(reader.readScalar("events_processed")),
        readHistogram(reader, "signal"), std::move(normalization),
        std::nullopt};
    if (reader.has("signal_error_sq_data")) {
      content.signalErrorSq = readHistogram(reader, "signal_error_sq");
    }
    if (!content.signal.sameShape(content.normalization) ||
        (content.signalErrorSq &&
         !content.signalErrorSq->sameShape(content.signal))) {
      outcome.failure = ReadFailure::Damaged;
      return outcome;
    }
    outcome.reduction = std::move(content);
  } catch (const std::exception&) {
    outcome.failure = ReadFailure::Damaged;
  }
  return outcome;
}

} // namespace

CacheConfig CacheConfig::withEnvOverrides(std::string directory,
                                          std::uint64_t budgetBytes) {
  CacheConfig config{std::move(directory), budgetBytes};
  if (const char* env = std::getenv("VATES_CACHE_DIR")) {
    config.directory = env;
  }
  if (const char* env = std::getenv("VATES_CACHE_BUDGET")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      config.budgetBytes = value;
    } else {
      VATES_LOG_WARN("VATES_CACHE_BUDGET=\"" << env
                                             << "\" ignored: not a byte count");
    }
  }
  return config;
}

CacheStats& CacheStats::operator+=(const CacheStats& other) noexcept {
  hits += other.hits;
  memoryHits += other.memoryHits;
  misses += other.misses;
  stores += other.stores;
  storeFailures += other.storeFailures;
  evictions += other.evictions;
  invalidEntries += other.invalidEntries;
  bytes += other.bytes;
  entries += other.entries;
  return *this;
}

NormalizationCache::NormalizationCache(CacheConfig config)
    : config_(std::move(config)) {
  if (config_.directory.empty()) {
    return; // disabled: every find misses, every store fails
  }
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  writable_ = !ec && fs::is_directory(config_.directory, ec) && !ec;
  if (!writable_) {
    VATES_LOG_WARN("cache directory unusable, falling back to cold compute: "
                   << config_.directory);
    return;
  }
  scanDirectory();
}

std::optional<NormalizationCache::FileIdentity>
NormalizationCache::statIdentity(const std::string& path) {
  struct ::stat info{};
  if (::stat(path.c_str(), &info) != 0) {
    return std::nullopt;
  }
  return FileIdentity{static_cast<std::uint64_t>(info.st_ino),
                      static_cast<std::uint64_t>(info.st_size),
                      static_cast<std::int64_t>(info.st_mtim.tv_sec) *
                              1'000'000'000 +
                          info.st_mtim.tv_nsec};
}

std::string NormalizationCache::entryFileName(const std::string& key,
                                              bool partial) {
  return strfmt("%016llx-%s%s",
                static_cast<unsigned long long>(fnv1a64(key)),
                partial ? "part" : "norm", kCacheEntryExtension);
}

std::string NormalizationCache::entryPath(const std::string& key,
                                          bool partial) const {
  return (fs::path(config_.directory) / entryFileName(key, partial)).string();
}

void NormalizationCache::scanDirectory() {
  std::error_code ec;
  fs::directory_iterator it(config_.directory, ec);
  if (ec) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const fs::directory_entry& entry : it) {
    std::error_code entryEc;
    if (!entry.is_regular_file(entryEc) || entryEc ||
        entry.path().extension() != kCacheEntryExtension) {
      continue;
    }
    const std::uint64_t bytes = entry.file_size(entryEc);
    if (entryEc) {
      continue;
    }
    noteEntryLocked(entry.path().filename().string(), bytes);
  }
}

void NormalizationCache::noteEntryLocked(const std::string& fileName,
                                         std::uint64_t bytes) {
  IndexEntry& slot = index_[fileName];
  indexBytes_ += bytes - slot.bytes;
  slot.bytes = bytes;
  slot.touched = ++lruClock_;
}

void NormalizationCache::evictToBudgetLocked(const std::string& keep) {
  if (config_.budgetBytes == 0) {
    return; // unbounded
  }
  while (indexBytes_ > config_.budgetBytes) {
    auto victim = index_.end();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->first == keep) {
        continue; // the just-written entry is always retained
      }
      if (victim == index_.end() || it->second.touched < victim->second.touched) {
        victim = it;
      }
    }
    if (victim == index_.end()) {
      return;
    }
    std::error_code ec;
    fs::remove(fs::path(config_.directory) / victim->first, ec);
    // Counted even when another process already removed the file: the
    // index slot is gone either way.
    ++counters_.evictions;
    indexBytes_ -= victim->second.bytes;
    forgetLocked(victim->first);
    index_.erase(victim);
  }
}

void NormalizationCache::dropDamagedEntry(const std::string& fileName) {
  std::error_code ec;
  fs::remove(fs::path(config_.directory) / fileName, ec);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fileName);
  if (it != index_.end()) {
    indexBytes_ -= it->second.bytes;
    index_.erase(it);
  }
  forgetLocked(fileName);
  ++counters_.invalidEntries;
}

void NormalizationCache::rememberLocked(
    const std::string& fileName, const FileIdentity& identity,
    std::shared_ptr<const Histogram3D> normalization,
    std::shared_ptr<const CachedReduction> reduction) {
  if (config_.memoryBudgetBytes == 0) {
    return; // hot tier disabled
  }
  forgetLocked(fileName);
  MemoryEntry& slot = memory_[fileName];
  slot.identity = identity;
  slot.touched = ++lruClock_;
  slot.normalization = std::move(normalization);
  slot.reduction = std::move(reduction);
  memoryBytes_ += identity.size;
  while (memoryBytes_ > config_.memoryBudgetBytes && memory_.size() > 1) {
    auto victim = memory_.end();
    for (auto it = memory_.begin(); it != memory_.end(); ++it) {
      if (it->first == fileName) {
        continue; // the just-inserted entry is always retained
      }
      if (victim == memory_.end() ||
          it->second.touched < victim->second.touched) {
        victim = it;
      }
    }
    if (victim == memory_.end()) {
      return;
    }
    memoryBytes_ -= victim->second.identity.size;
    memory_.erase(victim);
  }
}

void NormalizationCache::forgetLocked(const std::string& fileName) {
  const auto it = memory_.find(fileName);
  if (it != memory_.end()) {
    memoryBytes_ -= it->second.identity.size;
    memory_.erase(it);
  }
}

std::shared_ptr<const Histogram3D>
NormalizationCache::findNormalization(const std::string& key) {
  const std::string fileName = entryFileName(key, /*partial=*/false);
  const std::string path = entryPath(key, /*partial=*/false);
  // Identity is taken BEFORE the read: if the file is replaced mid-read
  // the recorded identity no longer matches the new file, so the stale
  // hot-tier entry can never be served for it.
  const std::optional<FileIdentity> identity =
      writable_ ? statIdentity(path) : std::nullopt;
  if (!identity) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(fileName);
    if (it != memory_.end() && it->second.identity == *identity &&
        it->second.normalization != nullptr) {
      ++counters_.hits;
      ++counters_.memoryHits;
      it->second.touched = ++lruClock_;
      if (const auto disk = index_.find(fileName); disk != index_.end()) {
        disk->second.touched = ++lruClock_; // LRU bump, both tiers
      }
      return it->second.normalization;
    }
  }
  ReadOutcome outcome = readEntryFile(path, /*partial=*/false, key);
  if (outcome.failure == ReadFailure::Damaged) {
    dropDamagedEntry(fileName);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!outcome.normalization) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  if (const auto it = index_.find(fileName); it != index_.end()) {
    it->second.touched = ++lruClock_; // LRU bump
  } else {
    // Published by another process since our scan; adopt it.
    noteEntryLocked(fileName, identity->size);
  }
  auto shared = std::make_shared<const Histogram3D>(
      std::move(*outcome.normalization));
  rememberLocked(fileName, *identity, shared, nullptr);
  return shared;
}

std::shared_ptr<const CachedReduction>
NormalizationCache::findReduction(const std::string& key) {
  const std::string fileName = entryFileName(key, /*partial=*/true);
  const std::string path = entryPath(key, /*partial=*/true);
  const std::optional<FileIdentity> identity =
      writable_ ? statIdentity(path) : std::nullopt;
  if (!identity) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(fileName);
    if (it != memory_.end() && it->second.identity == *identity &&
        it->second.reduction != nullptr) {
      ++counters_.hits;
      ++counters_.memoryHits;
      it->second.touched = ++lruClock_;
      if (const auto disk = index_.find(fileName); disk != index_.end()) {
        disk->second.touched = ++lruClock_;
      }
      return it->second.reduction;
    }
  }
  ReadOutcome outcome = readEntryFile(path, /*partial=*/true, key);
  if (outcome.failure == ReadFailure::Damaged) {
    dropDamagedEntry(fileName);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!outcome.reduction) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  if (const auto it = index_.find(fileName); it != index_.end()) {
    it->second.touched = ++lruClock_;
  } else {
    noteEntryLocked(fileName, identity->size);
  }
  auto shared =
      std::make_shared<const CachedReduction>(std::move(*outcome.reduction));
  rememberLocked(fileName, *identity, nullptr, shared);
  return shared;
}

bool NormalizationCache::storeNormalization(const std::string& key,
                                            const Histogram3D& normalization) {
  if (!writable_) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.storeFailures;
    return false;
  }
  const std::string fileName = entryFileName(key, /*partial=*/false);
  static std::atomic<std::uint64_t> tempCounter{0};
  const fs::path temp =
      fs::path(config_.directory) /
      strfmt("%s.tmp-%ld-%llu", fileName.c_str(),
             static_cast<long>(::getpid()),
             static_cast<unsigned long long>(
                 tempCounter.fetch_add(1, std::memory_order_relaxed)));
  const fs::path target = fs::path(config_.directory) / fileName;
  std::error_code ec;
  try {
    {
      nx::Writer writer(temp.string());
      writer.writeScalar(kVersionDataset,
                         static_cast<double>(kCacheFormatVersion));
      writer.writeScalar(kKindDataset, kKindNormalization);
      writeKey(writer, key);
      writeHistogram(writer, "normalization", normalization);
      writer.close();
    }
    const std::uint64_t bytes = fs::file_size(temp, ec);
    if (ec) {
      throw IOError("cannot size cache entry: " + temp.string());
    }
    fs::rename(temp, target, ec);
    if (ec) {
      throw IOError("cannot publish cache entry: " + target.string());
    }
    const std::optional<FileIdentity> identity =
        statIdentity(target.string());
    std::lock_guard<std::mutex> lock(mutex_);
    noteEntryLocked(fileName, bytes);
    ++counters_.stores;
    if (identity) {
      // Warm the hot tier with the bits just published.
      rememberLocked(fileName, *identity,
                     std::make_shared<const Histogram3D>(normalization),
                     nullptr);
    }
    evictToBudgetLocked(fileName);
    return true;
  } catch (const std::exception& error) {
    fs::remove(temp, ec);
    VATES_LOG_WARN("cache store failed (cold compute unaffected): "
                   << error.what());
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.storeFailures;
    return false;
  }
}

bool NormalizationCache::storeReduction(const std::string& key,
                                        const CachedReduction& value) {
  if (!writable_) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.storeFailures;
    return false;
  }
  const std::string fileName = entryFileName(key, /*partial=*/true);
  static std::atomic<std::uint64_t> tempCounter{0};
  const fs::path temp =
      fs::path(config_.directory) /
      strfmt("%s.tmp-%ld-%llu", fileName.c_str(),
             static_cast<long>(::getpid()),
             static_cast<unsigned long long>(
                 tempCounter.fetch_add(1, std::memory_order_relaxed)));
  const fs::path target = fs::path(config_.directory) / fileName;
  std::error_code ec;
  try {
    {
      nx::Writer writer(temp.string());
      writer.writeScalar(kVersionDataset,
                         static_cast<double>(kCacheFormatVersion));
      writer.writeScalar(kKindDataset, kKindPartialReduction);
      writeKey(writer, key);
      writer.writeScalar("files_reduced",
                         static_cast<double>(value.filesReduced));
      writer.writeScalar("events_processed",
                         static_cast<double>(value.eventsProcessed));
      writeHistogram(writer, "normalization", value.normalization);
      writeHistogram(writer, "signal", value.signal);
      if (value.signalErrorSq) {
        writeHistogram(writer, "signal_error_sq", *value.signalErrorSq);
      }
      writer.close();
    }
    const std::uint64_t bytes = fs::file_size(temp, ec);
    if (ec) {
      throw IOError("cannot size cache entry: " + temp.string());
    }
    fs::rename(temp, target, ec);
    if (ec) {
      throw IOError("cannot publish cache entry: " + target.string());
    }
    const std::optional<FileIdentity> identity =
        statIdentity(target.string());
    std::lock_guard<std::mutex> lock(mutex_);
    noteEntryLocked(fileName, bytes);
    ++counters_.stores;
    if (identity) {
      rememberLocked(fileName, *identity, nullptr,
                     std::make_shared<const CachedReduction>(value));
    }
    evictToBudgetLocked(fileName);
    return true;
  } catch (const std::exception& error) {
    fs::remove(temp, ec);
    VATES_LOG_WARN("cache store failed (cold compute unaffected): "
                   << error.what());
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.storeFailures;
    return false;
  }
}

CacheStats NormalizationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = counters_;
  snapshot.bytes = indexBytes_;
  snapshot.entries = index_.size();
  return snapshot;
}

std::size_t NormalizationCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  std::error_code ec;
  fs::directory_iterator it(config_.directory, ec);
  if (!ec) {
    for (const fs::directory_entry& entry : it) {
      std::error_code entryEc;
      if (!entry.is_regular_file(entryEc) || entryEc) {
        continue;
      }
      const std::string name = entry.path().filename().string();
      const bool isEntry = entry.path().extension() == kCacheEntryExtension;
      const bool isStrayTemp = name.find(".tmp-") != std::string::npos;
      if (!isEntry && !isStrayTemp) {
        continue;
      }
      fs::remove(entry.path(), entryEc);
      if (!entryEc && isEntry) {
        ++removed;
      }
    }
  }
  index_.clear();
  indexBytes_ = 0;
  memory_.clear();
  memoryBytes_ = 0;
  return removed;
}

bool verifyCacheEntry(const std::string& path, std::string* error) {
  const auto fail = [error](const std::string& reason) {
    if (error != nullptr) {
      *error = reason;
    }
    return false;
  };
  try {
    nx::Reader reader(path);
    if (!reader.has(kVersionDataset) || !reader.has(kKindDataset) ||
        !reader.has(kKeyDataset)) {
      return fail("missing cache header datasets");
    }
    const double version = reader.readScalar(kVersionDataset);
    if (version != static_cast<double>(kCacheFormatVersion)) {
      return fail(strfmt("format version %g != current %u", version,
                         kCacheFormatVersion));
    }
    const double kind = reader.readScalar(kKindDataset);
    const std::string key = readKey(reader);
    if (key.empty()) {
      return fail("empty cache key");
    }
    if (kind == kKindNormalization) {
      const bool expected = NormalizationCache::entryFileName(
                                key, /*partial=*/false) ==
                            fs::path(path).filename().string();
      if (!expected) {
        return fail("file name does not match embedded key");
      }
      readHistogram(reader, "normalization"); // verifies every CRC
      return true;
    }
    if (kind == kKindPartialReduction) {
      const bool expected = NormalizationCache::entryFileName(
                                key, /*partial=*/true) ==
                            fs::path(path).filename().string();
      if (!expected) {
        return fail("file name does not match embedded key");
      }
      reader.readScalar("files_reduced");
      reader.readScalar("events_processed");
      const Histogram3D normalization = readHistogram(reader, "normalization");
      const Histogram3D signal = readHistogram(reader, "signal");
      if (!signal.sameShape(normalization)) {
        return fail("signal/normalization shape mismatch");
      }
      if (reader.has("signal_error_sq_data")) {
        const Histogram3D errorSq = readHistogram(reader, "signal_error_sq");
        if (!errorSq.sameShape(signal)) {
          return fail("error histogram shape mismatch");
        }
      }
      return true;
    }
    return fail(strfmt("unknown entry kind %g", kind));
  } catch (const std::exception& caught) {
    return fail(caught.what());
  }
}

} // namespace vates::cache
