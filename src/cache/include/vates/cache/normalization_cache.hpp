#pragma once
/// \file normalization_cache.hpp
/// Persistent on-disk MDNorm result cache — the cross-*process* sibling
/// of the service's shared-grid batching.
///
/// Shared-grid batching (DESIGN.md §8) dedupes normalization passes
/// across jobs that are co-resident in the queue; every new session
/// still re-pays the full MDNorm integral.  At a facility the
/// normalization inputs (instrument geometry, lattice, goniometer
/// schedule, flux band, output grid) repeat across sessions far more
/// than they repeat within one queue, so this cache persists results to
/// disk, keyed by the same `normalizationKey` string the batcher uses:
/// equal keys ⇒ bitwise-equal normalization histograms, which is what
/// makes serving a warm run from the cache *exactly* as trustworthy as
/// recomputing — the skipNormalization divide path is unchanged.
///
/// Two entry kinds share one directory:
///
///  - *norm* entries (`<hash>-norm.nxc`) store just the normalization
///    histogram under the full `normalizationKey`.  A hit lets a job
///    skip its MDNorm pass and divide by the cached denominator.
///  - *part* entries (`<hash>-part.nxc`) store partial reduction
///    accumulators — signal, normalization, optional σ², the number of
///    files they cover — under `incrementalKey` (the normalization key
///    with the file count canonicalized plus every data-affecting
///    field).  Appending files to a previously reduced plan then
///    re-reduces only the delta files, seeded with these accumulators
///    (see ReductionPipeline::runIncremental for the bit-identity
///    argument).
///
/// On-disk discipline reuses the repo's golden-file machinery: entries
/// are nxlite containers (per-dataset CRC-32, `src/io/crc32`), stamped
/// with `kCacheFormatVersion` and the *verbatim key string*, so a hash
/// collision, a truncation, a flipped payload bit, or a format bump all
/// read back as a miss — never as wrong bins.  Damaged entries are
/// deleted on discovery.
///
/// Concurrency: single-writer/multi-reader safe across processes
/// sharing one directory.  Writers publish with write-to-temp +
/// `std::filesystem::rename` (atomic within a filesystem), so a reader
/// only ever opens a fully written entry; POSIX keeps an unlinked file
/// readable by whoever already opened it, so eviction never corrupts a
/// concurrent read.  Cross-process races (another process evicting an
/// entry we were about to read) degrade to misses.
///
/// Eviction: an in-memory LRU index (seeded by scanning the directory
/// at construction, recency bumped on every hit) evicts the
/// least-recently-used entries whenever resident bytes exceed the
/// budget; the just-written entry is always retained even when it alone
/// exceeds the budget.
///
/// Hot tier: on top of the disk entries, each cache instance keeps the
/// most recently used *deserialized* entries in RAM (its own LRU byte
/// budget), so a resident service re-serving the same plan skips the
/// read + CRC + deserialize entirely.  A RAM entry is only served while
/// the disk file it came from is provably unchanged — its (inode, size,
/// mtime) identity is re-stat'ed on every find and any mismatch (or a
/// missing file, i.e. a cross-process eviction) falls back to the
/// CRC-verified disk path.  Entries enter the tier carrying bits that
/// were CRC-verified on read (or just written), so hot hits inherit the
/// disk tier's integrity guarantees.

#include "vates/histogram/histogram3d.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace vates::cache {

/// Bumped whenever the entry layout changes; mismatched entries are
/// treated as damaged (deleted, counted, missed) rather than read.
inline constexpr std::uint32_t kCacheFormatVersion = 1;

/// File extension of every cache entry (norm and part alike).
inline constexpr const char* kCacheEntryExtension = ".nxc";

/// Where and how big.  An empty directory disables caching entirely.
struct CacheConfig {
  std::string directory;
  /// Resident-bytes ceiling the LRU evicts down to (0: unbounded).
  std::uint64_t budgetBytes = std::uint64_t{256} << 20;
  /// Hot-tier ceiling: deserialized entries kept in RAM, LRU-evicted by
  /// their on-disk byte size (0 disables the tier; finds then always
  /// take the CRC-verified disk path).
  std::uint64_t memoryBudgetBytes = std::uint64_t{256} << 20;

  /// Apply the VATES_CACHE_DIR / VATES_CACHE_BUDGET environment
  /// overrides (same warn-and-ignore contract as VATES_OVERLAP) on top
  /// of the given plan/service values.
  static CacheConfig withEnvOverrides(std::string directory,
                                      std::uint64_t budgetBytes);
};

/// Counters one cache instance accumulates over its lifetime, plus the
/// current index footprint.  Aggregated into ServiceMetrics.
struct CacheStats {
  std::uint64_t hits = 0;
  /// Subset of `hits` served from the in-memory hot tier (no file read).
  std::uint64_t memoryHits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t storeFailures = 0; ///< unwritable dir, ENOSPC, rename races
  std::uint64_t evictions = 0;
  std::uint64_t invalidEntries = 0; ///< damaged/stale entries dropped on read
  std::uint64_t bytes = 0;          ///< resident entry bytes right now
  std::uint64_t entries = 0;        ///< resident entry count right now

  CacheStats& operator+=(const CacheStats& other) noexcept;
};

/// Partial (or complete) reduction accumulators for incremental mode:
/// the rank state after `filesReduced` files, before the final divide.
struct CachedReduction {
  std::uint64_t filesReduced = 0;
  std::uint64_t eventsProcessed = 0;
  Histogram3D signal;
  Histogram3D normalization;
  /// Present iff the producing run tracked errors.
  std::optional<Histogram3D> signalErrorSq;
};

/// One cache directory.  Thread-safe; any thread may find/store/clear.
class NormalizationCache {
public:
  /// Opens (and scans) \p config.directory, creating it if absent.  An
  /// unusable directory (a regular file in the way, no permission)
  /// degrades to a disabled cache: finds miss, stores fail, nothing
  /// throws — cold compute always remains available.
  explicit NormalizationCache(CacheConfig config);

  const CacheConfig& config() const noexcept { return config_; }

  /// True when the directory was usable at construction.
  bool writable() const noexcept { return writable_; }

  /// Look up a normalization histogram by its normalizationKey.
  /// Returns nullptr on a miss; hot hits share the cached object
  /// (immutable), disk hits deserialize and warm the hot tier.
  std::shared_ptr<const Histogram3D>
  findNormalization(const std::string& key);

  /// Publish a normalization histogram under \p key.  Returns false
  /// (and counts a storeFailure) when the entry could not be written.
  bool storeNormalization(const std::string& key,
                          const Histogram3D& normalization);

  /// Look up partial reduction accumulators by their incrementalKey.
  /// Returns nullptr on a miss (same tiering as findNormalization).
  std::shared_ptr<const CachedReduction>
  findReduction(const std::string& key);

  /// Publish partial reduction accumulators under \p key, replacing any
  /// previous entry (the one covering more files wins at the caller).
  bool storeReduction(const std::string& key, const CachedReduction& value);

  /// Point-in-time counters + footprint.
  CacheStats stats() const;

  /// Remove every entry (and stray temp file) in the directory;
  /// returns the number of entries removed.
  std::size_t clear();

  /// Entry file name for \p key ("<fnv1a64-hex>-norm.nxc" /
  /// "<hash>-part.nxc"); exposed for tests and the golden-drift check.
  static std::string entryFileName(const std::string& key, bool partial);

  /// Absolute path of \p key's entry inside this cache's directory.
  std::string entryPath(const std::string& key, bool partial) const;

private:
  struct IndexEntry {
    std::uint64_t bytes = 0;
    /// Monotonic LRU clock (not wall time): bumped on store and hit.
    std::uint64_t touched = 0;
  };

  /// What makes a disk entry "the same file": inode catches atomic
  /// rename-replacement, size catches truncation, mtime catches
  /// in-place modification.  A hot-tier entry is served only while the
  /// file's current identity equals the one recorded at read time.
  struct FileIdentity {
    std::uint64_t inode = 0;
    std::uint64_t size = 0;
    std::int64_t mtimeNs = 0;
    bool operator==(const FileIdentity&) const = default;
  };

  /// One deserialized entry in the hot tier (norm xor part).
  struct MemoryEntry {
    FileIdentity identity;
    std::uint64_t touched = 0;
    std::shared_ptr<const Histogram3D> normalization;
    std::shared_ptr<const CachedReduction> reduction;
  };

  static std::optional<FileIdentity> statIdentity(const std::string& path);

  void scanDirectory();
  void noteEntryLocked(const std::string& fileName, std::uint64_t bytes);
  void evictToBudgetLocked(const std::string& keep);
  void dropDamagedEntry(const std::string& fileName);
  /// Insert/replace the hot-tier entry for \p fileName and evict the
  /// tier down to memoryBudgetBytes (never evicting \p fileName).
  void rememberLocked(const std::string& fileName,
                      const FileIdentity& identity,
                      std::shared_ptr<const Histogram3D> normalization,
                      std::shared_ptr<const CachedReduction> reduction);
  void forgetLocked(const std::string& fileName);

  CacheConfig config_;
  bool writable_ = false;
  mutable std::mutex mutex_;
  std::map<std::string, IndexEntry> index_; ///< file name → footprint
  std::uint64_t indexBytes_ = 0;
  std::uint64_t lruClock_ = 0;
  std::map<std::string, MemoryEntry> memory_; ///< hot tier, same keys
  std::uint64_t memoryBytes_ = 0;
  CacheStats counters_; ///< hits/misses/... (bytes/entries derived)
};

/// Validate one cache entry file the way a reader would: magic, dataset
/// CRCs, format version, entry kind, embedded key, histogram layout.
/// Returns true when the entry is intact; otherwise false with a
/// human-readable reason in \p error (when non-null).  Used by the
/// golden-drift tooling (`gen_golden --check-cache`).
bool verifyCacheEntry(const std::string& path, std::string* error = nullptr);

} // namespace vates::cache
